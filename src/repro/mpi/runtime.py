"""SPMD thread runtime: the machine under the MPI-like interface.

The paper's substrate is real MPI on a cluster.  Offline we execute the same
single-program-multiple-data model with one OS thread per rank.  Each rank
owns a mailbox; sends are eager and buffered (payloads are copied/pickled at
send time), so the memory-isolation semantics of distributed ranks are
preserved even though the ranks share an address space.  Blocking operations
time out with :class:`~repro.mpi.errors.DeadlockError` instead of hanging,
and an unhandled exception in any rank aborts the whole world, mirroring
``MPI_Abort``.

Two execution styles are offered:

- :func:`run_spmd` -- run one function on every rank of a fresh world and
  return the per-rank results (this is ``mpiexec -n N python script.py``).
- :class:`World` with a bound driver -- used by ODIN's process/worker model
  (Fig. 1 of the paper), where the calling thread acts as one rank and the
  worker ranks run a service loop.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..chaos.core import ENGINE as _CH
from ..obs import causal as _CZ
from ..obs.flight import FLIGHT as _FL
from ..trace import TRACER as _TR
from .counters import CommCounters
from .errors import (AbortError, CommRevokedError, DeadlockError,
                     InjectedFault, MPIError, RankFailure)
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["World", "RankContext", "Message", "run_spmd", "current_context",
           "default_timeout", "set_default_timeout"]

_DEFAULT_TIMEOUT = float(os.environ.get("REPRO_MPI_TIMEOUT", "120"))


def _env_deadline() -> Optional[float]:
    raw = os.environ.get("REPRO_MPI_DEADLINE")
    if not raw:
        return None
    value = float(raw)
    return value if value > 0 else None

_tls = threading.local()

# distinguishes "rank not failed" from "rank failed with cause None"
_NOT_FAILED = object()


def default_timeout() -> float:
    """Current deadlock-detection timeout in seconds."""
    return _DEFAULT_TIMEOUT


def set_default_timeout(seconds: float) -> None:
    """Set the deadlock-detection timeout for subsequently created worlds."""
    global _DEFAULT_TIMEOUT
    _DEFAULT_TIMEOUT = float(seconds)


def current_context() -> "RankContext":
    """The rank context bound to the calling thread.

    Raises :class:`MPIError` when called outside an SPMD region.
    """
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise MPIError("no rank context bound to this thread "
                       "(are you outside an SPMD region?)")
    return ctx


class Message:
    """An in-flight message envelope.

    ``kind`` is ``'buffer'`` (payload: contiguous 1-D ndarray copy),
    ``'pickle'`` (payload: pickled bytes), or ``'pickle5'`` (payload:
    ``(blob, frames)`` -- a protocol-5 pickle stream plus its out-of-band
    buffers).  ``nbytes`` is the on-the-wire size used for
    instrumentation; for ``'pickle5'`` it counts the blob *and* the
    frames, so wire bytes always equal isolation-copy bytes.

    Payload buffers are marked read-only before delivery: the same
    physical copy is handed to the (same-process) receiver, so a writable
    view would let the receiver silently mutate what the sender believes
    was an immutable snapshot.
    """

    __slots__ = ("ctx_id", "src", "tag", "kind", "payload", "nbytes",
                 "seq")

    def __init__(self, ctx_id, src, tag, kind, payload, nbytes, seq=0):
        self.ctx_id = ctx_id
        self.src = src
        self.tag = tag
        self.kind = kind
        self.payload = payload
        self.nbytes = nbytes
        # per-(src, dest) delivery sequence number: the key that lets the
        # trace analyzer pair a recv event with the send that fed it
        self.seq = seq

    def matches(self, ctx_id, source, tag) -> bool:
        return (self.ctx_id == ctx_id
                and (source == ANY_SOURCE or self.src == source)
                and (tag == ANY_TAG or self.tag == tag))


class _Mailbox:
    """FIFO of pending messages for one rank, with matched retrieval."""

    def __init__(self, world: "World", rank: int):
        self._world = world
        self._rank = rank
        self._cond = threading.Condition()
        self._queue: List[Message] = []

    def deposit(self, msg: Message, jump: int = 0) -> None:
        """Enqueue *msg*; a positive *jump* (chaos reordering) lets it
        overtake up to that many queued messages, but never one from the
        same ``(src, ctx_id)`` stream -- the FIFO non-overtaking rule MPI
        guarantees per peer/context is preserved even under injection."""
        with self._cond:
            pos = len(self._queue)
            while jump > 0 and pos > 0:
                ahead = self._queue[pos - 1]
                if ahead.src == msg.src and ahead.ctx_id == msg.ctx_id:
                    break
                pos -= 1
                jump -= 1
            self._queue.insert(pos, msg)
            self._cond.notify_all()

    def wake(self) -> None:
        """Wake blocked receivers (used on world abort)."""
        with self._cond:
            self._cond.notify_all()

    def _find(self, ctx_id, source, tag, remove: bool) -> Optional[Message]:
        for i, msg in enumerate(self._queue):
            if msg.matches(ctx_id, source, tag):
                if remove:
                    del self._queue[i]
                return msg
        return None

    def retrieve(self, ctx_id, source, tag, timeout: float,
                 remove: bool = True, members=None) -> Message:
        """Block until a matching message arrives; return (and remove) it.

        The wait is watched three ways: world abort (fatal), the comm's
        revocation flag and the failed-rank set (both recoverable, raised
        as typed errors within one 0.25 s wake period -- the detection
        latency bound), and the deadline/timeout (``DeadlockError`` with a
        dump of every rank's pending op).
        """
        world = self._world
        if world.deadline is not None:
            timeout = min(timeout, world.deadline)
        deadline = time.monotonic() + timeout
        desc = f"recv(source={source}, tag={tag}, ctx={ctx_id})"
        world.note_pending(self._rank, desc)
        try:
            with self._cond:
                while True:
                    world.check_abort()
                    if world.is_revoked(ctx_id):
                        raise CommRevokedError(
                            f"communicator revoked while blocked in {desc}")
                    msg = self._find(ctx_id, source, tag, remove)
                    if msg is not None:
                        return msg
                    world.check_leases()
                    if world.has_failures:
                        if source != ANY_SOURCE:
                            cause = world.failure_cause(source)
                            if cause is not _NOT_FAILED:
                                raise RankFailure(source, desc, cause)
                        elif members is not None:
                            # ULFM's MPI_ERR_PROC_FAILED_PENDING: a
                            # wildcard recv cannot complete safely once
                            # any member of the comm is dead -- the
                            # awaited sender might be the dead one
                            for m in members:
                                cause = world.failure_cause(m)
                                if cause is not _NOT_FAILED:
                                    raise RankFailure(
                                        m, desc + " [wildcard]", cause)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        flight = _FL.notify_fault("DeadlockError", desc,
                                                  ranks=world.status())
                        raise DeadlockError(
                            f"{desc} timed out after {timeout:.1f}s; pending "
                            f"queue has {len(self._queue)} unmatched "
                            f"message(s)\n" + world.pending_dump()
                            + (f"\nflight recorder dump: {flight}"
                               if flight else ""))
                    self._cond.wait(timeout=min(remaining, 0.25))
        finally:
            world.clear_pending(self._rank)

    def poll(self, ctx_id, source, tag, remove: bool) -> Optional[Message]:
        with self._cond:
            self._world.check_abort()
            return self._find(ctx_id, source, tag, remove)


class World:
    """A set of ranks that can exchange messages.

    One :class:`World` backs one SPMD run (or one ODIN worker pool).  Rank
    numbering inside the world is the "world rank"; communicators map their
    own ranks onto these.
    """

    def __init__(self, nranks: int, timeout: Optional[float] = None,
                 deadline: Optional[float] = None):
        if nranks < 1:
            raise ValueError("world needs at least one rank")
        self.nranks = nranks
        self.timeout = _DEFAULT_TIMEOUT if timeout is None else float(timeout)
        # REPRO_MPI_DEADLINE caps every blocking wait regardless of the
        # caller's timeout: the watchdog for crash-between-abort-windows
        # hangs.  None = no cap beyond the per-call timeout.
        self.deadline = _env_deadline() if deadline is None else float(deadline)
        self.mailboxes = [_Mailbox(self, r) for r in range(nranks)]
        self.counters = [CommCounters() for _ in range(nranks)]
        # (src, dest) -> messages delivered so far; each key is written
        # only by the src rank's thread, so no lock is needed
        self._pair_seq = {}
        self._abort_lock = threading.Lock()
        self._abort: Optional[AbortError] = None
        # -- fail-stop state (ULFM substrate) --
        # has_failures is the one-predicate fast path read on every wait
        # iteration; the dict/lock are only touched once it flips.
        self.has_failures = False
        self._failed: dict = {}            # rank -> cause (may be None)
        self._revoked: set = set()         # revoked comm base ctx_ids
        self._fail_lock = threading.Lock()
        # rank -> (pending op description, per-rank blocking-op seq);
        # written only by the owning rank's thread
        self._pending: dict = {}
        self._pending_seq = [0] * nranks
        # rank -> last transport activity (the piggybacked heartbeat);
        # stamped on every deliver/retrieve by the owning rank's thread
        self._heartbeat = [time.monotonic()] * nranks
        # agreement slots: key -> {rank: value}; survivors of a failure
        # rendezvous here because mailbox traffic with a dead member hangs
        self._agree_cond = threading.Condition()
        self._agree_slots: dict = {}
        # rank -> executing thread (the lease).  Only recovery-enabled
        # runtimes register: in plain run_spmd a silently-dead thread
        # keeps surfacing as DeadlockError, exactly as before.
        self._rank_threads: dict = {}

    # -- failure propagation ------------------------------------------------
    def abort(self, origin_rank: int, cause: BaseException) -> None:
        first = False
        with self._abort_lock:
            if self._abort is None:
                self._abort = AbortError(origin_rank, cause)
                first = True
        self._wake_all()
        if first:
            _FL.notify_fault("AbortError", repr(cause),
                             ranks=self.status())

    def check_abort(self) -> None:
        if self._abort is not None:
            raise self._abort

    @property
    def aborted(self) -> bool:
        return self._abort is not None

    def _wake_all(self) -> None:
        for mb in self.mailboxes:
            mb.wake()
        with self._agree_cond:
            self._agree_cond.notify_all()

    # -- fail-stop failures (recoverable, unlike abort) ---------------------
    def mark_failed(self, rank: int, cause: Optional[BaseException] = None
                    ) -> None:
        """Record *rank* as dead (fail-stop) and wake all blocked waiters.

        Unlike :meth:`abort` this does not poison the world: surviving
        ranks observe typed :class:`RankFailure` errors on operations
        involving the dead rank and may revoke/shrink and continue.
        """
        first = False
        with self._fail_lock:
            if rank not in self._failed:
                self._failed[rank] = cause
                self.has_failures = True
                first = True
        self._wake_all()
        if first:
            _FL.notify_fault("RankFailure", f"rank {rank}: {cause!r}",
                             ranks=self.status())

    def failed_ranks(self):
        with self._fail_lock:
            return sorted(self._failed)

    def failure_cause(self, rank: int):
        """Cause for a failed rank, or the ``_NOT_FAILED`` sentinel."""
        if not self.has_failures:
            return _NOT_FAILED
        with self._fail_lock:
            return self._failed.get(rank, _NOT_FAILED)

    def is_failed(self, rank: int) -> bool:
        return self.has_failures and self.failure_cause(rank) is not _NOT_FAILED

    # -- rank leases --------------------------------------------------------
    def register_rank_thread(self, rank: int, thread) -> None:
        """Register *thread* as the lease for *rank*: if the thread dies
        without reporting (any death mode, not just an injected fault),
        blocked peers detect the rank as failed on their next wake."""
        self._rank_threads[rank] = thread

    def check_leases(self) -> None:
        """Expire the lease of any registered rank whose thread is dead
        but was never marked failed (e.g. it was killed by an uncaught
        error before it could report).

        Records the failure without :meth:`_wake_all`: callers poll from
        inside their own mailbox/agreement condition, and notifying every
        other condition from there could deadlock on lock ordering.
        Other blocked ranks run this same check on their next 0.25 s
        wake, which preserves the detection latency bound.
        """
        if not self._rank_threads:
            return
        for rank, thread in list(self._rank_threads.items()):
            if not thread.is_alive() and not self.is_failed(rank):
                with self._fail_lock:
                    if rank not in self._failed:
                        self._failed[rank] = RuntimeError(
                            f"rank {rank}'s thread died without reporting")
                        self.has_failures = True

    # -- communicator revocation --------------------------------------------
    def revoke_ctx(self, base_ctx_id) -> None:
        """Poison one communicator's context: every blocked or future op
        on it raises :class:`CommRevokedError`.  Derived communicators
        have distinct base ids and are untouched (ULFM semantics)."""
        with self._fail_lock:
            self._revoked.add(base_ctx_id)
        self._wake_all()

    def is_revoked(self, ctx_id) -> bool:
        if not self._revoked:
            return False
        if ctx_id in self._revoked:
            return True
        # transport streams wrap the comm's base id: p2p is (base, "p"),
        # collectives are (base, "c", seq) -- one context per collective
        # instance, so rounds of different collectives can never match
        # each other's messages.  Only these inherit the flag --
        # derived-comm ids like (base, "shrink", seq) nest the parent
        # base too, but revocation must NOT cascade into children.
        return (isinstance(ctx_id, tuple) and len(ctx_id) in (2, 3)
                and ctx_id[1] in ("p", "c")
                and ctx_id[0] in self._revoked)

    # -- pending-op registry (deadlock watchdog evidence) -------------------
    def note_pending(self, rank: int, desc: str) -> None:
        self._pending_seq[rank] += 1
        self._pending[rank] = (desc, self._pending_seq[rank])
        self._heartbeat[rank] = time.monotonic()

    def clear_pending(self, rank: int) -> None:
        self._pending.pop(rank, None)
        self._heartbeat[rank] = time.monotonic()

    def pending_dump(self) -> str:
        """One line per rank: its pending blocking op and op sequence."""
        now = time.monotonic()
        lines = ["pending operations by rank:"]
        for rank in range(self.nranks):
            entry = self._pending.get(rank)
            state = ("FAILED" if self.is_failed(rank) else
                     f"{entry[0]} [op #{entry[1]}]" if entry is not None else
                     "idle")
            age = now - self._heartbeat[rank]
            lines.append(f"  rank {rank}: {state} "
                         f"(last heartbeat {age:.2f}s ago)")
        return "\n".join(lines)

    def status(self) -> list:
        """:meth:`pending_dump` as data: one dict per rank with its
        pending blocking op, per-rank op sequence, failure flag and
        heartbeat age.  Lock-free (each field is written by one thread
        and read atomically under the GIL), so the ``/status`` endpoint
        can call it from an observer thread while the workload is
        blocked or even deadlocked."""
        now = time.monotonic()
        out = []
        for rank in range(self.nranks):
            entry = self._pending.get(rank)
            out.append({
                "rank": rank,
                "failed": self.is_failed(rank),
                "pending": None if entry is None else entry[0],
                "op_seq": None if entry is None else entry[1],
                "heartbeat_age_s": round(now - self._heartbeat[rank], 3),
            })
        return out

    # -- fault-tolerant agreement -------------------------------------------
    def agreement(self, key, rank: int, value, participants, combine):
        """Contribute *value* under *key* and return ``combine`` over the
        contributions of every participant that has not failed.

        This is the rendezvous the ULFM ``shrink``/``agree`` collectives
        are built on: it cannot use mailboxes (a dead member would stall
        any message pattern), so contributions meet in a world-level slot
        guarded by one condition variable.  Survivors return the same
        result because a failed rank never contributes after being marked
        failed, and the slot is immutable once complete.
        """
        participants = list(participants)
        with self._agree_cond:
            slot = self._agree_slots.setdefault(key, {})
            if not isinstance(slot, dict):      # already decided
                return slot[1]
            slot[rank] = value
            self._agree_cond.notify_all()
            deadline = time.monotonic() + (
                self.timeout if self.deadline is None
                else min(self.timeout, self.deadline))
            while True:
                self.check_abort()
                self.check_leases()
                slot = self._agree_slots[key]
                if not isinstance(slot, dict):  # a peer froze the result
                    return slot[1]
                waiting = [r for r in participants
                           if r not in slot and not self.is_failed(r)]
                if not waiting:
                    # freeze: the first member to observe completeness
                    # computes the result once (under the lock), so every
                    # participant returns the identical value even if
                    # further failures land mid-agreement
                    result = combine([slot[r] for r in sorted(slot)])
                    self._agree_slots[key] = ("decided", result)
                    self._agree_cond.notify_all()
                    return result
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    flight = _FL.notify_fault(
                        "DeadlockError", f"agreement {key!r}",
                        ranks=self.status())
                    raise DeadlockError(
                        f"agreement {key!r} timed out waiting for ranks "
                        f"{waiting}\n" + self.pending_dump()
                        + (f"\nflight recorder dump: {flight}"
                           if flight else ""))
                self._agree_cond.wait(timeout=min(remaining, 0.25))

    # -- transport ----------------------------------------------------------
    def deliver(self, src: int, dest: int, ctx_id, tag, kind, payload,
                nbytes, jump: int = 0) -> int:
        """Deposit a message into *dest*'s mailbox and count the traffic.

        Returns the message's per-(src, dest) sequence number, which the
        sender's trace event shares with the receiver's so post-mortem
        analysis can match the two ends of every transfer.  *jump* is a
        chaos-injected reorder depth (see :meth:`_Mailbox.deposit`); the
        sequence number is stamped in true send order regardless, so
        trace matching survives reordering.
        """
        seq = self._pair_seq.get((src, dest), 0) + 1
        self._pair_seq[(src, dest)] = seq
        self._heartbeat[src] = time.monotonic()
        self.counters[src].record_send(dest, nbytes)
        self.mailboxes[dest].deposit(
            Message(ctx_id, src, tag, kind, payload, nbytes, seq), jump)
        return seq

    def total_traffic(self):
        """Aggregate (messages, bytes) over all ranks' send counters."""
        msgs = sum(c.snapshot().sends for c in self.counters)
        nbytes = sum(c.snapshot().bytes_sent for c in self.counters)
        return msgs, nbytes

    # -- transport topology (overridden by ProcessWorld) --------------------
    # Thread worlds share one address space: every rank is local, and
    # shared structures (RMA windows, agreement slots) are reached
    # directly.  The process backend overrides these to route through
    # its socket mesh.
    is_process_backend = False

    def is_remote_rank(self, rank: int) -> bool:
        """Whether *rank*'s state lives in another process."""
        return False


class RankContext:
    """Per-thread handle identifying 'which rank am I' within a world."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank

    # -- low-level typed transport (used by Comm) ---------------------------
    def send_buffer(self, dest: int, ctx_id, tag, flat: np.ndarray) -> None:
        t0 = _TR.now() if _TR.enabled else 0.0
        payload = np.array(flat, copy=True, order="C")
        nbytes = payload.nbytes
        jump = 0
        if _CH.enabled:
            payload, nbytes, jump = _CH.on_send(self.rank, dest, "buffer",
                                                payload, nbytes)
        if isinstance(payload, np.ndarray):
            payload.flags.writeable = False
        seq = self.world.deliver(self.rank, dest, ctx_id, tag, "buffer",
                                 payload, nbytes, jump)
        if _TR.enabled:
            _TR.complete("mpi.p2p", "send", t0, rank=self.rank, dest=dest,
                         nbytes=nbytes, kind="buffer", seq=seq)

    def send_object(self, dest: int, ctx_id, tag, obj: Any) -> None:
        """Pickle *obj* and deposit it at *dest*.

        ndarray-bearing objects take the protocol-5 out-of-band path:
        ``pickle.dumps`` captures zero-copy :class:`pickle.PickleBuffer`
        views of the array data, and the ONE copy made per buffer below
        is the isolation copy that stands in for the wire transfer.  The
        copy is marked read-only and the receiver unpickles arrays as
        views of it -- no second (deserialization) copy.  Objects without
        ndarrays keep the classic single-blob pickle path.
        """
        t0 = _TR.now() if _TR.enabled else 0.0
        buffers: List[pickle.PickleBuffer] = []
        blob = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        if buffers:
            frames = []
            nbytes = len(blob)
            for pb in buffers:
                frame = np.frombuffer(pb.raw(), dtype=np.uint8).copy()
                pb.release()
                frame.flags.writeable = False
                frames.append(frame)
                nbytes += frame.nbytes
            kind = "pickle5"
            payload: Any = (blob, frames)
        else:
            kind = "pickle"
            payload = blob
            nbytes = len(blob)
        jump = 0
        if _CH.enabled:
            payload, nbytes, jump = _CH.on_send(self.rank, dest, kind,
                                                payload, nbytes)
        seq = self.world.deliver(self.rank, dest, ctx_id, tag, kind,
                                 payload, nbytes, jump)
        if _TR.enabled:
            _TR.complete("mpi.p2p", "send", t0, rank=self.rank, dest=dest,
                         nbytes=nbytes, kind=kind, seq=seq)

    def recv_message(self, ctx_id, source, tag,
                     timeout: Optional[float] = None,
                     members=None) -> Message:
        timeout = self.world.timeout if timeout is None else timeout
        if _CH.enabled:
            _CH.on_op("recv", self.rank)
        if _TR.enabled:
            # the span covers the blocked wait: recv time in the trace is
            # time spent *waiting* for the matching message
            t0 = _TR.now()
            msg = self.world.mailboxes[self.rank].retrieve(
                ctx_id, source, tag, timeout, members=members)
            self.world.counters[self.rank].record_recv(msg.src, msg.nbytes)
            _TR.complete("mpi.p2p", "recv", t0, rank=self.rank,
                         source=msg.src, nbytes=msg.nbytes, seq=msg.seq)
            return msg
        msg = self.world.mailboxes[self.rank].retrieve(
            ctx_id, source, tag, timeout, members=members)
        self.world.counters[self.rank].record_recv(msg.src, msg.nbytes)
        return msg

    def poll_message(self, ctx_id, source, tag,
                     remove: bool = False) -> Optional[Message]:
        msg = self.world.mailboxes[self.rank].poll(ctx_id, source, tag, remove)
        if msg is not None and remove:
            self.world.counters[self.rank].record_recv(msg.src, msg.nbytes)
            if _TR.enabled:
                _TR.instant("mpi.p2p", "recv.poll", rank=self.rank,
                            source=msg.src, nbytes=msg.nbytes, seq=msg.seq)
        return msg

    def bind(self) -> None:
        """Bind this context to the calling thread."""
        _tls.ctx = self
        _TR.set_thread_rank(self.rank)
        _CZ.note_rank_thread(f"rank {self.rank}")

    def unbind(self) -> None:
        if getattr(_tls, "ctx", None) is self:
            _tls.ctx = None
            _TR.set_thread_rank(None)
            _CZ.forget_rank_thread()


def run_spmd(fn: Callable[..., Any], nranks: int, args: Sequence = (),
             kwargs: Optional[dict] = None, timeout: Optional[float] = None,
             pass_comm: bool = True,
             fault_mode: str = "abort",
             backend: Optional[str] = None) -> List[Any]:
    """Run *fn* on every rank of a fresh *nranks*-rank world.

    This is the offline equivalent of ``mpiexec -n nranks``.  When
    *pass_comm* is true (default), *fn* is called as
    ``fn(comm, *args, **kwargs)`` with that rank's world communicator;
    otherwise ``fn(*args, **kwargs)`` and the rank obtains its communicator
    via :func:`repro.mpi.get_comm_world`.

    *backend* selects the transport (``"thread"`` | ``"process"``,
    default from ``REPRO_MPI_BACKEND``, then ``"thread"``): threads
    share one address space and one GIL; the process backend forks one
    OS process per rank for real multicore parallelism (see
    :mod:`repro.mpi.transport`).

    *fault_mode* selects what a rank death means for the others:

    - ``"abort"`` (default): any unhandled exception aborts the world;
      the first failing rank's exception is re-raised in the caller.
    - ``"failstop"``: an :class:`InjectedFault` marks just that rank
      failed; survivors see typed :class:`RankFailure` errors and may
      ``revoke()``/``shrink()`` and continue.  The dead rank's entry in
      the result list is its ``InjectedFault``; survivor exceptions other
      than the fault still re-raise.

    Returns the list of per-rank return values (index = rank).
    """
    from .comm import Intracomm  # local import: comm builds on runtime
    from .transport import resolve_backend

    if fault_mode not in ("abort", "failstop"):
        raise ValueError(f"unknown fault_mode {fault_mode!r}")
    if resolve_backend(backend) == "process":
        from .transport.process_backend import run_spmd_process
        return run_spmd_process(fn, nranks, args=args, kwargs=kwargs,
                                timeout=timeout, pass_comm=pass_comm,
                                fault_mode=fault_mode)
    kwargs = kwargs or {}
    world = World(nranks, timeout=timeout)
    results: List[Any] = [None] * nranks
    errors: List[Optional[BaseException]] = [None] * nranks

    def body(rank: int) -> None:
        ctx = RankContext(world, rank)
        ctx.bind()
        try:
            comm = Intracomm(ctx, list(range(nranks)))
            if pass_comm:
                results[rank] = fn(comm, *args, **kwargs)
            else:
                results[rank] = fn(*args, **kwargs)
        except InjectedFault as exc:
            errors[rank] = exc
            if fault_mode == "failstop":
                results[rank] = exc
                world.mark_failed(rank, exc)
            else:
                world.abort(rank, exc)
        except BaseException as exc:  # noqa: BLE001 - must propagate any error
            errors[rank] = exc
            world.abort(rank, exc)
        finally:
            ctx.unbind()

    threads = [threading.Thread(target=body, args=(r,),
                                name=f"spmd-rank-{r}", daemon=True)
               for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for rank, exc in enumerate(errors):
        if exc is None or isinstance(exc, AbortError):
            continue
        if fault_mode == "failstop" and isinstance(exc, InjectedFault):
            continue  # the scripted death is the experiment, not a failure
        raise exc
    if fault_mode == "abort":
        for exc in errors:
            if exc is not None:
                raise exc
    return results
