"""MPI-style datatype handles mapped onto NumPy dtypes.

The paper's substrate (mpi4py) distinguishes the pickle path (lowercase
methods) from the fast buffer path (uppercase methods) where a datatype may
be given explicitly, e.g. ``comm.Send([data, MPI.DOUBLE], ...)``.  We keep
the same convention: a :class:`Datatype` is a thin named wrapper around a
NumPy dtype, and buffer specifications accept ``array``, ``[array, Datatype]``
or ``[array, count, Datatype]``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Datatype",
    "BYTE", "CHAR", "SHORT", "INT", "LONG", "LONG_LONG",
    "UNSIGNED", "UNSIGNED_LONG", "FLOAT", "DOUBLE", "C_FLOAT_COMPLEX",
    "C_DOUBLE_COMPLEX", "BOOL", "INT32_T", "INT64_T",
    "from_numpy_dtype", "decode_buffer_spec",
]


class Datatype:
    """A named handle pairing an MPI-style name with a NumPy dtype."""

    __slots__ = ("name", "np_dtype")

    def __init__(self, name: str, np_dtype) -> None:
        self.name = name
        self.np_dtype = np.dtype(np_dtype)

    @property
    def extent(self) -> int:
        """Size in bytes of one element of this datatype."""
        return self.np_dtype.itemsize

    def __repr__(self) -> str:
        return f"Datatype({self.name})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Datatype) and self.np_dtype == other.np_dtype

    def __hash__(self) -> int:
        return hash(self.np_dtype)


BYTE = Datatype("MPI_BYTE", np.uint8)
CHAR = Datatype("MPI_CHAR", np.int8)
SHORT = Datatype("MPI_SHORT", np.int16)
INT = Datatype("MPI_INT", np.int32)
LONG = Datatype("MPI_LONG", np.int64)
LONG_LONG = Datatype("MPI_LONG_LONG", np.int64)
UNSIGNED = Datatype("MPI_UNSIGNED", np.uint32)
UNSIGNED_LONG = Datatype("MPI_UNSIGNED_LONG", np.uint64)
FLOAT = Datatype("MPI_FLOAT", np.float32)
DOUBLE = Datatype("MPI_DOUBLE", np.float64)
C_FLOAT_COMPLEX = Datatype("MPI_C_FLOAT_COMPLEX", np.complex64)
C_DOUBLE_COMPLEX = Datatype("MPI_C_DOUBLE_COMPLEX", np.complex128)
BOOL = Datatype("MPI_BOOL", np.bool_)
INT32_T = Datatype("MPI_INT32_T", np.int32)
INT64_T = Datatype("MPI_INT64_T", np.int64)

_BY_DTYPE = {
    d.np_dtype: d
    for d in (BYTE, CHAR, SHORT, INT, LONG, UNSIGNED, UNSIGNED_LONG,
              FLOAT, DOUBLE, C_FLOAT_COMPLEX, C_DOUBLE_COMPLEX, BOOL)
}


def from_numpy_dtype(dtype) -> Datatype:
    """Return the :class:`Datatype` matching a NumPy dtype.

    Unknown dtypes (e.g. structured dtypes) get a fresh ad-hoc handle, which
    is what mpi4py's automatic discovery effectively does for PEP-3118
    buffers of custom layout.
    """
    dtype = np.dtype(dtype)
    try:
        return _BY_DTYPE[dtype]
    except KeyError:
        return Datatype(f"MPI_USER<{dtype}>", dtype)


def decode_buffer_spec(spec):
    """Decode an mpi4py-style buffer specification.

    Accepts ``array``, ``[array, Datatype]`` or ``[array, count, Datatype]``
    and returns ``(flat_view, count, Datatype)`` where *flat_view* is a
    1-D view (no copy) of the underlying array restricted to *count*
    elements.
    """
    count = None
    dtype = None
    if isinstance(spec, (list, tuple)):
        if len(spec) == 2:
            buf, dtype = spec
        elif len(spec) == 3:
            buf, count, dtype = spec
        else:
            raise ValueError(
                "buffer spec must be array, [array, Datatype] or "
                "[array, count, Datatype]"
            )
    else:
        buf = spec
    arr = np.asarray(buf)
    if dtype is not None and not isinstance(dtype, Datatype):
        dtype = from_numpy_dtype(dtype)
    if dtype is None:
        dtype = from_numpy_dtype(arr.dtype)
    elif arr.dtype != dtype.np_dtype:
        arr = arr.view(dtype.np_dtype)
    flat = arr.reshape(-1)
    if count is None:
        count = flat.shape[0]
    elif count > flat.shape[0]:
        raise ValueError(f"count {count} exceeds buffer length {flat.shape[0]}")
    return flat[:count], int(count), dtype
