"""Receive status objects, mirroring ``MPI_Status``."""

from __future__ import annotations

__all__ = ["Status", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class Status:
    """Metadata about a received (or probed) message."""

    __slots__ = ("source", "tag", "count_bytes", "error")

    def __init__(self, source=ANY_SOURCE, tag=ANY_TAG, count_bytes=0, error=0):
        self.source = source
        self.tag = tag
        self.count_bytes = count_bytes
        self.error = error

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self, datatype=None) -> int:
        """Number of received elements of *datatype* (bytes if None)."""
        if datatype is None:
            return self.count_bytes
        return self.count_bytes // datatype.extent

    def __repr__(self):
        return (f"Status(source={self.source}, tag={self.tag}, "
                f"bytes={self.count_bytes})")
