"""Alpha-beta communication cost model.

The thread runtime exchanges messages at shared-memory speed, so raw wall
time says nothing about cluster behaviour.  Scaling benchmarks therefore
combine *measured message counts and volumes* (from
:class:`~repro.mpi.counters.CommCounters`) with a latency/bandwidth model:

    T_comm = alpha * n_messages + n_bytes / beta

Defaults approximate a commodity cluster interconnect of the paper's era
(~2 microsecond latency, ~2.5 GB/s effective bandwidth).  The absolute
numbers are configurable; the *shape* of scaling curves (who wins, where
crossovers fall) is what the reproduction relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "COMMODITY_CLUSTER", "FAST_INTERCONNECT",
           "ETHERNET"]


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth (alpha-beta) model of an interconnect."""

    name: str
    alpha: float        # per-message latency, seconds
    beta: float         # bandwidth, bytes/second
    flop_rate: float = 2.0e9   # per-core useful FLOP/s for compute terms

    def comm_time(self, n_messages: int, n_bytes: int) -> float:
        """Projected communication time for a traffic total."""
        return self.alpha * n_messages + n_bytes / self.beta

    def compute_time(self, n_flops: float) -> float:
        return n_flops / self.flop_rate

    def total_time(self, n_messages: int, n_bytes: int,
                   n_flops: float) -> float:
        return self.comm_time(n_messages, n_bytes) + \
            self.compute_time(n_flops)


COMMODITY_CLUSTER = CostModel("commodity-cluster", alpha=2.0e-6,
                              beta=2.5e9)
FAST_INTERCONNECT = CostModel("fast-interconnect", alpha=0.5e-6,
                              beta=12.0e9)
ETHERNET = CostModel("gigabit-ethernet", alpha=50.0e-6, beta=0.125e9)
