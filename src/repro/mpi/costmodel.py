"""Alpha-beta communication cost model and collective algorithm selection.

The thread runtime exchanges messages at shared-memory speed, so raw wall
time says nothing about cluster behaviour.  Scaling benchmarks therefore
combine *measured message counts and volumes* (from
:class:`~repro.mpi.counters.CommCounters`) with a latency/bandwidth model:

    T_comm = alpha * n_messages + n_bytes / beta

Defaults approximate a commodity cluster interconnect of the paper's era
(~2 microsecond latency, ~2.5 GB/s effective bandwidth).  The absolute
numbers are configurable; the *shape* of scaling curves (who wins, where
crossovers fall) is what the reproduction relies on.

The same model drives the substrate's collective algorithm selection
(:meth:`~repro.mpi.comm.Intracomm.allreduce` and friends): for each
collective the classic algorithms have closed-form critical-path costs in
(alpha, beta, p, message size), and the cheapest candidate is picked per
call.  :func:`collective_costs` exposes the candidate table and
:func:`select_algorithm` the argmin, so benchmarks and CI can assert the
runtime's observed choice (the ``algorithm`` label on traces/metrics)
against the model's prediction.

A declared :class:`Topology` -- groups of communicator ranks sharing a
node -- adds hierarchical candidates that pay the cheap intra-node
``(intra_alpha, intra_beta)`` terms for the intra-group phases and the
inter-node terms only for the leader exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CostModel", "Topology", "FLAT", "COMMODITY_CLUSTER",
           "FAST_INTERCONNECT", "ETHERNET", "collective_costs",
           "select_algorithm", "COLLECTIVE_ALGORITHMS"]


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth (alpha-beta) model of an interconnect.

    ``intra_alpha``/``intra_beta`` model the intra-node path (shared
    memory or a node-local bus) used by hierarchical collectives; they
    default to ``None``, meaning "same as the inter-node network", which
    makes hierarchical algorithms cost-neutral and thus never selected.
    """

    name: str
    alpha: float        # per-message latency, seconds
    beta: float         # bandwidth, bytes/second
    flop_rate: float = 2.0e9   # per-core useful FLOP/s for compute terms
    intra_alpha: Optional[float] = None  # intra-node latency, seconds
    intra_beta: Optional[float] = None   # intra-node bandwidth, bytes/s

    def comm_time(self, n_messages: int, n_bytes: int) -> float:
        """Projected communication time for a traffic total."""
        return self.alpha * n_messages + n_bytes / self.beta

    def intra_comm_time(self, n_messages: int, n_bytes: int) -> float:
        """Projected intra-node communication time for a traffic total."""
        alpha = self.alpha if self.intra_alpha is None else self.intra_alpha
        beta = self.beta if self.intra_beta is None else self.intra_beta
        return alpha * n_messages + n_bytes / beta

    def compute_time(self, n_flops: float) -> float:
        return n_flops / self.flop_rate

    def total_time(self, n_messages: int, n_bytes: int,
                   n_flops: float) -> float:
        return self.comm_time(n_messages, n_bytes) + \
            self.compute_time(n_flops)


COMMODITY_CLUSTER = CostModel("commodity-cluster", alpha=2.0e-6,
                              beta=2.5e9, intra_alpha=0.3e-6,
                              intra_beta=8.0e9)
FAST_INTERCONNECT = CostModel("fast-interconnect", alpha=0.5e-6,
                              beta=12.0e9, intra_alpha=0.2e-6,
                              intra_beta=20.0e9)
ETHERNET = CostModel("gigabit-ethernet", alpha=50.0e-6, beta=0.125e9,
                     intra_alpha=0.3e-6, intra_beta=8.0e9)


@dataclass(frozen=True)
class Topology:
    """Declared node topology: groups of communicator ranks per node.

    ``intra_node_groups`` is a sequence of rank groups; together the
    groups must partition ``range(p)`` of the communicator they are used
    with.  An empty tuple (the default, also available as
    :data:`FLAT`), a single all-ranks group, or all-singleton groups all
    mean "no exploitable hierarchy" (:attr:`is_flat`).

    Example: 8 ranks on 2 four-core nodes::

        Topology(intra_node_groups=[(0, 1, 2, 3), (4, 5, 6, 7)])
    """

    intra_node_groups: Tuple[Tuple[int, ...], ...] = field(
        default_factory=tuple)

    def __post_init__(self):
        norm = tuple(tuple(sorted(int(r) for r in g))
                     for g in self.intra_node_groups)
        norm = tuple(sorted((g for g in norm if g),
                            key=lambda g: g[0]))
        object.__setattr__(self, "intra_node_groups", norm)

    @property
    def nranks(self) -> int:
        return sum(len(g) for g in self.intra_node_groups)

    @property
    def is_flat(self) -> bool:
        groups = self.intra_node_groups
        return len(groups) <= 1 or all(len(g) == 1 for g in groups)

    def validate(self, p: int) -> None:
        """Raise ``ValueError`` unless the groups partition ``range(p)``."""
        seen = [r for g in self.intra_node_groups for r in g]
        if sorted(seen) != list(range(p)):
            raise ValueError(
                f"topology groups {self.intra_node_groups!r} do not "
                f"partition ranks 0..{p - 1}")

    def groups_for(self, p: int) -> Optional[List[List[int]]]:
        """Sorted group lists when usable for a size-*p* comm, else None.

        "Usable" means non-flat and an exact partition of ``range(p)``;
        a topology declared for a different communicator size degrades
        to flat rather than mis-routing a hierarchical exchange.
        """
        if self.is_flat:
            return None
        try:
            self.validate(p)
        except ValueError:
            return None
        return [list(g) for g in self.intra_node_groups]


FLAT = Topology()


# ----------------------------------------------------------------------
# collective algorithm cost formulas
# ----------------------------------------------------------------------

#: Every algorithm label each adaptive collective may legally record in
#: its trace span / metrics labels.  ``local`` is the p == 1 shortcut.
COLLECTIVE_ALGORITHMS: Dict[str, Tuple[str, ...]] = {
    "allreduce": ("local", "reduce+bcast", "recursive-doubling", "ring",
                  "rabenseifner", "hierarchical"),
    "bcast": ("local", "binomial-tree", "scatter-allgather",
              "hierarchical"),
    "reduce": ("local", "binomial-tree", "rank-ordered-tree",
               "gather-fold", "ring"),
}


def _ceil_lg(p: int) -> int:
    return (p - 1).bit_length() if p > 1 else 0


def _is_pow2(p: int) -> bool:
    return p >= 1 and (p & (p - 1)) == 0


def _group_shape(topology: Optional[Topology],
                 p: int) -> Optional[Tuple[int, int]]:
    """(n_groups, max_group_size) of a usable topology, else None."""
    if topology is None:
        return None
    groups = topology.groups_for(p)
    if groups is None:
        return None
    return len(groups), max(len(g) for g in groups)


def collective_costs(coll: str, p: int, nbytes: int, model: CostModel,
                     topology: Optional[Topology] = None,
                     commutative: bool = True,
                     count: Optional[int] = None) -> Dict[str, float]:
    """Critical-path cost of every eligible algorithm for one call.

    ``count`` is the element count of the payload when it is sliceable
    (the buffer path always knows it); segmented algorithms (ring,
    rabenseifner, scatter-allgather) need ``count >= p`` to have a
    non-empty block per rank and are excluded otherwise.  Costs are
    seconds under *model*; the argmin is what the substrate executes.
    """
    if coll not in COLLECTIVE_ALGORITHMS:
        raise ValueError(f"unknown collective {coll!r}")
    if p == 1:
        return {"local": 0.0}
    a, beta = model.alpha, model.beta
    nb = nbytes / beta
    lg = _ceil_lg(p)
    # non-power-of-two fold: the surplus ranks pay one fold-in exchange
    # and one result return, each a full-vector message
    pen = 0.0 if _is_pow2(p) else 2.0 * (a + nb)
    seg = count is not None and count >= p
    bw_seg = 2.0 * (p - 1) / p * nb   # reduce-scatter + allgather volume
    shape = _group_shape(topology, p)
    costs: Dict[str, float] = {}

    if coll == "allreduce":
        costs["reduce+bcast"] = 2 * lg * (a + nb)
        if commutative:
            costs["recursive-doubling"] = lg * (a + nb) + pen
            if seg:
                costs["ring"] = 2 * (p - 1) * a + bw_seg
                costs["rabenseifner"] = 2 * lg * a + bw_seg + pen
            if shape is not None:
                ngroups, gmax = shape
                lgl = _ceil_lg(ngroups)
                penl = 0.0 if _is_pow2(ngroups) else 2.0 * (a + nb)
                intra = model.intra_comm_time(2 * _ceil_lg(gmax),
                                              2 * _ceil_lg(gmax) * nbytes)
                costs["hierarchical"] = intra + lgl * (a + nb) + penl
    elif coll == "bcast":
        costs["binomial-tree"] = lg * (a + nb)
        if seg:
            costs["scatter-allgather"] = (lg + p - 1) * a + bw_seg
        if shape is not None:
            ngroups, gmax = shape
            costs["hierarchical"] = (
                _ceil_lg(ngroups) * (a + nb)
                + model.intra_comm_time(_ceil_lg(gmax),
                                        _ceil_lg(gmax) * nbytes))
    elif coll == "reduce":
        if commutative:
            costs["binomial-tree"] = lg * (a + nb)
            if seg:
                # ring reduce-scatter, then the p-1 owned blocks hop to
                # the root (its receive serializes the latency terms)
                costs["ring"] = 2 * (p - 1) * a + bw_seg
        else:
            # rank-ordered binomial fold to rank 0 plus a root forward
            costs["rank-ordered-tree"] = lg * (a + nb) + (a + nb)
    return costs


def select_algorithm(coll: str, p: int, nbytes: int, model: CostModel,
                     topology: Optional[Topology] = None,
                     commutative: bool = True,
                     count: Optional[int] = None) -> str:
    """The cheapest eligible algorithm for one collective call.

    Deterministic in its arguments (ties break on the algorithm name),
    which is what makes per-call selection SPMD-safe: every rank feeds
    in the same (p, size, model, topology) and lands on the same
    algorithm.
    """
    costs = collective_costs(coll, p, nbytes, model, topology=topology,
                             commutative=commutative, count=count)
    return min(costs.items(), key=lambda kv: (kv[1], kv[0]))[0]


def crossover_size(coll: str, algo_small: str, algo_large: str, p: int,
                   model: CostModel, topology: Optional[Topology] = None,
                   commutative: bool = True,
                   itemsize: int = 8, max_bytes: int = 1 << 26) -> Optional[int]:
    """Approximate message size (bytes) where *algo_large* overtakes
    *algo_small*, by bisection over the cost formulas; None if it never
    does below *max_bytes*.  Used by the ablation bench to place its
    size sweep on both sides of the predicted crossover."""
    def winner(nbytes):
        costs = collective_costs(
            coll, p, nbytes, model, topology=topology,
            commutative=commutative, count=max(p, nbytes // itemsize))
        if algo_small not in costs or algo_large not in costs:
            return None
        return costs[algo_small] <= costs[algo_large]
    lo, hi = 1, max_bytes
    if winner(lo) is None or not winner(lo) or winner(hi):
        return None
    for _ in range(60):
        mid = (lo + hi) // 2
        if winner(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1:
            break
    return hi
