"""Pluggable transport backends for the SPMD runtime.

Two backends implement the same :class:`~repro.mpi.runtime.World`
contract:

- ``"thread"`` -- the original shared-address-space runtime: one OS
  thread per rank, in-memory mailboxes.  Deterministic under chaos
  injection and cheap to spin up, so it stays the default for tests.
- ``"process"`` -- one OS process per rank (:mod:`.process_backend`):
  a fork-inherited socketpair mesh for envelopes and control frames,
  shared-memory segments for bulk ndarray frames, and *real* failure
  detection (a dead process closes its sockets).  This is the backend
  that escapes the GIL: rank compute genuinely overlaps on multicore.

Selection: the ``backend=`` argument of
:func:`~repro.mpi.runtime.run_spmd` / :class:`~repro.odin.context.OdinContext`,
falling back to the ``REPRO_MPI_BACKEND`` environment variable, falling
back to ``"thread"``.
"""

from __future__ import annotations

import os

__all__ = ["BACKENDS", "resolve_backend"]

BACKENDS = ("thread", "process")


def resolve_backend(backend=None) -> str:
    """Normalize a backend choice (explicit arg > env var > thread)."""
    if backend is None or backend == "":
        backend = os.environ.get("REPRO_MPI_BACKEND", "").strip() \
            or "thread"
    backend = str(backend).strip().lower()
    if backend not in BACKENDS:
        raise ValueError(f"unknown transport backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    return backend
