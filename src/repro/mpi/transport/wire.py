"""Wire protocol of the multiprocess transport.

One socketpair connects every pair of ranks.  Each message is a
length-prefixed pickled *header* followed by zero or more raw payload
chunks whose sizes the header declares:

    [u32 header length][header pickle][chunk 0][chunk 1]...

The header is ``(msgtype, body, chunk_lens)``.  ``DATA`` messages carry
a :class:`~repro.mpi.runtime.Message` envelope; everything else is
control traffic (failure propagation, agreement, counters, RMA
service).  Bulk ndarray frames above :func:`~.shm.shm_threshold` do not
travel as chunks at all -- they go through shared memory (see
:mod:`.shm`) and only their segment name rides the header.

A short read anywhere raises :class:`EOFError`: with SIGKILLed peers
the kernel closes the socket mid-frame, and the receiver must treat a
truncated message exactly like a closed connection (a dead rank).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .shm import ShmPool, shm_threshold

__all__ = ["Channel", "DATA", "FAILSTOP", "ABORT", "REVOKE", "AGREE",
           "DECIDED", "CTRS_REQ", "CTRS_REP", "CTRS_RESET", "RMA_PUT",
           "RMA_GET", "RMA_REP", "RMA_ACC", "HB",
           "encode_payload", "decode_payload"]

# message types
DATA = 1          # (envelope_meta, payload_spec)
FAILSTOP = 2      # (rank, cause_pickle)
ABORT = 3         # (origin_rank, cause_pickle)
REVOKE = 4        # (base_ctx_id,)
AGREE = 5         # (key, rank, value)
DECIDED = 6       # (key, result)
CTRS_REQ = 7      # (reply_id,)
CTRS_REP = 8      # (reply_id, CounterSnapshot)
CTRS_RESET = 9    # ()
RMA_PUT = 10      # (win_id, offset, dtype_str, data)
RMA_GET = 11      # (win_id, offset, count, dtype_str, reply_id)
RMA_REP = 12      # (reply_id, data | exception)
RMA_ACC = 13      # (win_id, offset, op_name, dtype_str, data)
HB = 14           # () piggybacked liveness stamp

_LEN = struct.Struct("!I")


class Channel:
    """One rank's end of a socketpair, with framed send/recv.

    Sends are serialized by a per-channel lock: the rank's main thread
    (data sends) and its receiver thread (control replies) share the
    socket.
    """

    def __init__(self, sock):
        self.sock = sock
        self._send_lock = threading.Lock()

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, msgtype: int, body: Any,
             chunks: Sequence = ()) -> None:
        chunks = [memoryview(c).cast("B") for c in chunks]
        header = pickle.dumps(
            (msgtype, body, [c.nbytes for c in chunks]), protocol=5)
        with self._send_lock:
            self.sock.sendall(_LEN.pack(len(header)) + header)
            for c in chunks:
                self.sock.sendall(c)

    def _read_exact(self, n: int) -> memoryview:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            r = self.sock.recv_into(view[got:], n - got)
            if r == 0:
                raise EOFError("peer closed the transport socket")
            got += r
        return memoryview(buf)

    def recv(self) -> Tuple[int, Any, List[memoryview]]:
        """Read one framed message; raises EOFError on close/truncation."""
        (hlen,) = _LEN.unpack(self._read_exact(4))
        msgtype, body, chunk_lens = pickle.loads(self._read_exact(hlen))
        chunks = [self._read_exact(n) for n in chunk_lens]
        return msgtype, body, chunks

    def close(self) -> None:
        # shutdown() first: close() alone does not wake a receiver
        # thread blocked in recv_into() on this fd, which would leave
        # every teardown waiting out the thread-join timeout
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# payload encoding (the three Message kinds of the thread runtime)
# ----------------------------------------------------------------------
def _place(pool: Optional[ShmPool], data, threshold: int, chunks: List):
    """Route one buffer inline (chunk) or through shared memory."""
    view = memoryview(data).cast("B")
    if pool is not None and view.nbytes >= threshold:
        name, nbytes = pool.export(view)
        return ("shm", name, nbytes)
    chunks.append(view)
    return ("inline",)


def encode_payload(pool: Optional[ShmPool], kind: str, payload
                   ) -> Tuple[Any, List]:
    """Flatten a Message payload into (spec, inline_chunks)."""
    threshold = shm_threshold()
    chunks: List = []
    if kind == "pickle":
        chunks.append(memoryview(payload))
        return None, chunks
    if kind == "buffer":
        arr = np.ascontiguousarray(payload)
        spec = (arr.dtype.str, arr.shape,
                _place(pool, arr, threshold, chunks))
        return spec, chunks
    if kind == "pickle5":
        blob, frames = payload
        chunks.append(memoryview(blob))
        spec = [_place(pool, np.ascontiguousarray(f), threshold, chunks)
                for f in frames]
        return spec, chunks
    raise ValueError(f"unknown message kind {kind!r}")


def _restore(pool: ShmPool, placement, chunks: List, idx: List[int]):
    if placement[0] == "shm":
        return pool.attach(placement[1], placement[2])
    i = idx[0]
    idx[0] += 1
    frame = np.frombuffer(chunks[i], dtype=np.uint8)
    frame.flags.writeable = False
    return frame


def decode_payload(pool: ShmPool, kind: str, spec, chunks: List):
    """Rebuild the exact payload shape the thread backend delivers:
    read-only buffers, so receiver-side copy-on-write still holds."""
    if kind == "pickle":
        return bytes(chunks[0])
    idx = [0]
    if kind == "buffer":
        dtype_str, shape, placement = spec
        raw = _restore(pool, placement, chunks, idx)
        arr = raw.view(np.dtype(dtype_str)).reshape(shape)
        arr.flags.writeable = False
        return arr
    if kind == "pickle5":
        blob = bytes(chunks[0])
        idx = [1]
        frames = [_restore(pool, p, chunks, idx) for p in spec]
        return blob, frames
    raise ValueError(f"unknown message kind {kind!r}")
