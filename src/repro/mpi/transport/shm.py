"""Shared-memory frame pool for the multiprocess transport.

Large payload frames (the protocol-5 out-of-band ndarray buffers, and
flat ``'buffer'``-kind sends) cross the process boundary through named
POSIX shared memory instead of the control socket: the sender makes ONE
copy into a fresh segment (that copy *is* the isolation copy the thread
backend makes anyway), ships the segment name in the envelope, and the
receiver maps a read-only view -- zero further copies, mirroring the
PR 4 copy-on-write SETITEM semantics.

Lifetime protocol (the part that keeps ``/dev/shm`` clean):

- The creator detaches its own mapping immediately after the copy; the
  kernel keeps the segment alive because the name still exists.
- The receiver unlinks the name *at attach time*.  POSIX keeps the
  memory itself alive until the last mapping goes away, so the mapped
  view stays valid for as long as the receiving world holds it -- but
  the name is gone, so a receiver crash after attach leaks nothing.
- A segment whose message is never received (its rank was SIGKILLed
  mid-flight) still carries the session prefix, and the parent sweeps
  ``/dev/shm/<prefix>*`` at teardown (and again at interpreter exit).

Every segment is deliberately unregistered from multiprocessing's
``resource_tracker``: with fork-inherited workers the tracker would
double-unlink (or unlink early) and spam warnings at exit.  Lifetime is
entirely the explicit protocol above.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import shared_memory, resource_tracker
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["ShmPool", "new_session_id", "sweep_session", "segment_names",
           "shm_threshold", "SHM_PREFIX"]

SHM_PREFIX = "repro-shm-"

_DEFAULT_MIN = 64 * 1024  # frames below this ride inline on the socket


def shm_threshold() -> int:
    """Minimum frame size (bytes) routed through shared memory."""
    try:
        return int(os.environ.get("REPRO_MPI_SHM_MIN", _DEFAULT_MIN))
    except ValueError:
        return _DEFAULT_MIN


def new_session_id() -> str:
    """A name component unique to one world (parent pid + random)."""
    return f"{os.getpid():x}-{secrets.token_hex(4)}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker API is private, best effort
        pass


def segment_names(session_id: str) -> List[str]:
    """Names of this session's live segments (Linux: /dev/shm listing)."""
    prefix = SHM_PREFIX + session_id + "-"
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(prefix))
    except OSError:
        return []


def sweep_session(session_id: str) -> int:
    """Unlink every leftover segment of *session_id*; returns the count.

    Run by the parent at world teardown and at interpreter exit: the only
    segments still named here are ones whose message was never received
    (the receiving rank died first), since receivers unlink on attach.
    """
    swept = 0
    for name in segment_names(session_id):
        try:
            os.unlink(os.path.join("/dev/shm", name))
            swept += 1
        except OSError:
            pass
    return swept


class ShmPool:
    """Per-process handle pool: creates outgoing and maps incoming frames."""

    def __init__(self, session_id: str, rank: int):
        self.session_id = session_id
        self.rank = rank
        self._counter = 0
        # attached segments must outlive the arrays viewing them; the
        # world drops this list (and thus the mappings) at close()
        self._attached: List[shared_memory.SharedMemory] = []

    # -- sender side --------------------------------------------------------
    def export(self, data) -> Tuple[str, int]:
        """Copy *data* (a buffer-like) into a fresh segment.

        Returns ``(name, nbytes)`` for the wire descriptor.  The local
        mapping is closed before returning -- the named segment is the
        only reference until the receiver attaches.
        """
        view = memoryview(data).cast("B")
        nbytes = view.nbytes
        self._counter += 1
        name = (f"{SHM_PREFIX}{self.session_id}-r{self.rank}"
                f"-{self._counter}")
        seg = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(nbytes, 1))
        _untrack(seg)
        if nbytes:
            seg.buf[:nbytes] = view
        seg.close()
        return name, nbytes

    # -- receiver side ------------------------------------------------------
    def attach(self, name: str, nbytes: int) -> np.ndarray:
        """Map segment *name* read-only and unlink it immediately.

        Returns a read-only ``uint8`` view of the payload bytes.  Raises
        ``FileNotFoundError`` if the segment is gone (swept after the
        sender died) -- callers surface that as a failed-rank condition.
        """
        seg = shared_memory.SharedMemory(name=name)
        _untrack(seg)
        try:
            # unlink the *name* now; the memory survives until the last
            # mapping is dropped.  Not seg.unlink(): that would also tell
            # the (possibly inherited) resource tracker to unregister a
            # name this process never registered, spamming KeyErrors.
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            pass
        self._attached.append(seg)
        frame = np.frombuffer(seg.buf, dtype=np.uint8, count=nbytes)
        frame.flags.writeable = False
        return frame

    def close(self) -> None:
        """Drop every attached mapping (arrays viewing them die with the
        world that owned this pool)."""
        attached, self._attached = self._attached, []
        for seg in attached:
            try:
                seg.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass


def register_atexit_sweep(session_id: str) -> None:
    """Sweep *session_id* at interpreter exit (parent-side belt and
    braces for crash-during-teardown paths)."""
    atexit.register(sweep_session, session_id)
