"""Multiprocess transport: one OS process per rank, real parallelism.

:class:`ProcessWorld` subclasses the thread runtime's :class:`World` and
replaces its shared-address-space transport with a fork-inherited
socketpair mesh plus shared-memory bulk frames (:mod:`.wire`,
:mod:`.shm`).  Every rank runs the *same* :class:`Intracomm` /
collective / ULFM code as the thread backend -- only ``deliver``,
failure propagation, agreement and the counters plumbing change:

- ``deliver`` to a remote rank encodes the envelope onto the peer
  socket; a receiver thread on the other side deposits it into that
  process's (single, local) mailbox.  Self-sends keep the thread
  backend's in-memory fast path.
- A dead process is a *real* failure: the kernel closes its sockets, the
  peer's receiver thread reads EOF and calls ``mark_failed`` -- the same
  typed :class:`RankFailure` surface the thread backend produces from
  injection, detected within one 0.25 s mailbox wake of the EOF.  A
  rank dying *politely* (fail-stop injection) broadcasts ``FAILSTOP``
  with its pickled cause first, so survivors see the true cause rather
  than a bare connection-lost error.
- ``revoke``/``abort`` broadcast control frames and then apply locally;
  receivers apply without re-broadcast, so propagation terminates.
- ULFM agreement cannot rendezvous in shared memory, so every
  participant broadcasts its contribution and each process runs the
  same deterministic combine over the same sorted contribution set; the
  first process to decide also broadcasts ``DECIDED`` so racy observers
  adopt a single result.  (With a rank SIGKILLed halfway through its
  own contribution broadcast, two survivors could in principle observe
  different contribution sets; the ``DECIDED`` fast path shrinks that
  window but the single-decision-point guarantee of the thread backend
  is fundamentally relaxed here -- see docs/INTERNALS.md §11.)
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import (AbortError, DeadlockError, InjectedFault, MPIError,
                      RankFailure)
from ..runtime import (Message, RankContext, World, _NOT_FAILED,
                       default_timeout)
from ..counters import CounterSnapshot
from ...trace import TRACER as _TR
from . import wire
from .shm import (ShmPool, new_session_id, register_atexit_sweep,
                  sweep_session)

__all__ = ["ProcessMesh", "ProcessWorld", "run_spmd_process"]


def _picklable_exc(exc: Optional[BaseException]) -> Optional[BaseException]:
    """An exception safe to put in a wire header (fallback: repr)."""
    if exc is None:
        return None
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure
        return RuntimeError(f"[unpicklable {type(exc).__name__}] {exc!r}")


class ProcessMesh:
    """Pre-fork socketpair mesh: one pair per rank pair.

    Created in the parent *before* forking so every rank inherits all
    endpoints; :meth:`activate` then keeps only the calling rank's ends
    and closes the rest -- which is what makes peer EOF detection work
    (an fd held open by a bystander process would suppress the EOF).
    """

    def __init__(self, nranks: int):
        self.nranks = nranks
        self.session_id = new_session_id()
        self._pairs: Dict[tuple, tuple] = {}
        for i in range(nranks):
            for j in range(i + 1, nranks):
                self._pairs[(i, j)] = socket.socketpair()

    def activate(self, rank: int) -> Dict[int, socket.socket]:
        """Claim *rank*'s endpoints, closing every other inherited fd."""
        socks: Dict[int, socket.socket] = {}
        for (i, j), (a, b) in self._pairs.items():
            if i == rank:
                socks[j] = a
                b.close()
            elif j == rank:
                socks[i] = b
                a.close()
            else:
                a.close()
                b.close()
        self._pairs = {}
        return socks

    def close_all(self) -> None:
        """Drop every endpoint (a parent that is not itself a rank)."""
        for a, b in self._pairs.values():
            a.close()
            b.close()
        self._pairs = {}


class ProcessWorld(World):
    """A :class:`World` whose remote ranks live in other processes."""

    is_process_backend = True

    def __init__(self, nranks: int, my_rank: int, session_id: str,
                 socks: Dict[int, socket.socket],
                 timeout: Optional[float] = None):
        super().__init__(nranks, timeout=timeout)
        self.my_rank = my_rank
        self.session_id = session_id
        self.shm = ShmPool(session_id, my_rank)
        self._channels = {peer: wire.Channel(s)
                          for peer, s in socks.items()}
        self._closing = False
        # reply slots for round-trip control ops (counter fetch, RMA get)
        self._reply_cond = threading.Condition()
        self._replies: Dict[tuple, Any] = {}
        self._reply_seq = 0
        # rank -> multiprocessing.Process lease (parent-side liveness)
        self._rank_procs: Dict[int, Any] = {}
        self._recv_threads = [
            threading.Thread(target=self._recv_loop, args=(peer,),
                             name=f"transport-recv-{my_rank}<-{peer}",
                             daemon=True)
            for peer in sorted(self._channels)
        ]
        for t in self._recv_threads:
            t.start()

    # -- rank topology ------------------------------------------------------
    def is_remote_rank(self, rank: int) -> bool:
        return rank != self.my_rank

    def register_rank_process(self, rank: int, proc) -> None:
        """Register a child process as *rank*'s lease: if it exits
        without reporting, blocked local waiters detect the failure on
        their next 0.25 s wake (same bound as the thread backend)."""
        self._rank_procs[rank] = proc

    def check_leases(self) -> None:
        super().check_leases()
        for rank, proc in list(self._rank_procs.items()):
            if not proc.is_alive() and not self.is_failed(rank):
                with self._fail_lock:
                    if rank not in self._failed:
                        self._failed[rank] = RuntimeError(
                            f"rank {rank} process exited without reporting "
                            f"(exit code {proc.exitcode})")
                        self.has_failures = True

    # -- control-plane sends ------------------------------------------------
    def _send_control(self, peer: int, msgtype: int, body,
                      chunks: Sequence = ()) -> bool:
        ch = self._channels.get(peer)
        if ch is None or self._closing:
            return False
        try:
            ch.send(msgtype, body, chunks)
            return True
        except OSError:
            self._peer_lost(peer)
            return False

    def _broadcast_control(self, msgtype: int, body) -> None:
        for peer in sorted(self._channels):
            if not self.is_failed(peer):
                self._send_control(peer, msgtype, body)

    def _peer_lost(self, peer: int) -> None:
        if self._closing or self.aborted or self.is_failed(peer):
            return
        World.mark_failed(self, peer, RuntimeError(
            f"rank {peer} transport closed (process exited?)"))

    # -- failure propagation (broadcast + local apply) ----------------------
    def mark_failed(self, rank: int,
                    cause: Optional[BaseException] = None) -> None:
        if rank == self.my_rank and not self._closing:
            # dying politely: tell the peers the true cause before the
            # socket EOF would tell them a generic one
            self._broadcast_control(wire.FAILSTOP,
                                    (rank, _picklable_exc(cause)))
        super().mark_failed(rank, cause)

    def abort(self, origin_rank: int, cause: BaseException) -> None:
        if not self.aborted and not self._closing:
            self._broadcast_control(wire.ABORT,
                                    (origin_rank, _picklable_exc(cause)))
        super().abort(origin_rank, cause)

    def revoke_ctx(self, base_ctx_id) -> None:
        if not self._closing and not self.is_revoked(base_ctx_id):
            self._broadcast_control(wire.REVOKE, base_ctx_id)
        super().revoke_ctx(base_ctx_id)

    # -- fault-tolerant agreement (distributed flavour) ---------------------
    def agreement(self, key, rank: int, value, participants, combine):
        participants = list(participants)
        self._broadcast_control(wire.AGREE, (key, rank, value))
        with self._agree_cond:
            slot = self._agree_slots.setdefault(key, {})
            if not isinstance(slot, dict):
                return slot[1]
            slot[rank] = value
            self._agree_cond.notify_all()
            deadline = time.monotonic() + (
                self.timeout if self.deadline is None
                else min(self.timeout, self.deadline))
            while True:
                self.check_abort()
                self.check_leases()
                slot = self._agree_slots[key]
                if not isinstance(slot, dict):
                    return slot[1]
                waiting = [r for r in participants
                           if r not in slot and not self.is_failed(r)]
                if not waiting:
                    pset = set(participants)
                    result = combine([slot[r] for r in sorted(slot)
                                      if r in pset])
                    self._agree_slots[key] = ("decided", result)
                    self._agree_cond.notify_all()
                    self._broadcast_control(wire.DECIDED, (key, result))
                    return result
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"agreement {key!r} timed out waiting for ranks "
                        f"{waiting}\n" + self.pending_dump())
                self._agree_cond.wait(timeout=min(remaining, 0.25))

    def _apply_agree(self, key, rank: int, value) -> None:
        with self._agree_cond:
            slot = self._agree_slots.setdefault(key, {})
            if isinstance(slot, dict):
                slot[rank] = value
                self._agree_cond.notify_all()

    def _apply_decided(self, key, result) -> None:
        with self._agree_cond:
            slot = self._agree_slots.get(key)
            if slot is None or isinstance(slot, dict):
                self._agree_slots[key] = ("decided", result)
                self._agree_cond.notify_all()

    # -- transport ----------------------------------------------------------
    def deliver(self, src: int, dest: int, ctx_id, tag, kind, payload,
                nbytes, jump: int = 0) -> int:
        if dest == self.my_rank:
            return super().deliver(src, dest, ctx_id, tag, kind, payload,
                                   nbytes, jump)
        seq = self._pair_seq.get((src, dest), 0) + 1
        self._pair_seq[(src, dest)] = seq
        self._heartbeat[src] = time.monotonic()
        self.counters[src].record_send(dest, nbytes)
        if self.is_failed(dest) or self._closing:
            # parity with the thread backend, where a send to a dead
            # rank deposits into a mailbox nobody will ever read
            return seq
        ch = self._channels.get(dest)
        if ch is None:
            return seq
        spec, chunks = wire.encode_payload(self.shm, kind, payload)
        try:
            ch.send(wire.DATA,
                    (ctx_id, src, tag, kind, nbytes, seq, jump, spec),
                    chunks)
        except OSError:
            self._peer_lost(dest)
        return seq

    # -- receiver threads ---------------------------------------------------
    def _recv_loop(self, peer: int) -> None:
        ch = self._channels[peer]
        while True:
            try:
                msgtype, body, chunks = ch.recv()
            except (EOFError, OSError):
                self._peer_lost(peer)
                return
            self._heartbeat[peer] = time.monotonic()
            try:
                self._dispatch(peer, msgtype, body, chunks)
            except (EOFError, OSError):
                self._peer_lost(peer)
                return
            except Exception as exc:  # noqa: BLE001 - poison, don't hang
                self.abort(self.my_rank, RuntimeError(
                    f"transport receiver for peer {peer} failed: {exc!r}"))
                return

    def _dispatch(self, peer: int, msgtype: int, body, chunks) -> None:
        if msgtype == wire.DATA:
            ctx_id, src, tag, kind, nbytes, seq, jump, spec = body
            try:
                payload = wire.decode_payload(self.shm, kind, spec, chunks)
            except FileNotFoundError:
                # the frame's segment was swept: its sender died and the
                # parent cleaned up before we attached
                self._peer_lost(src)
                return
            self.mailboxes[self.my_rank].deposit(
                Message(ctx_id, src, tag, kind, payload, nbytes, seq),
                jump)
        elif msgtype == wire.FAILSTOP:
            rank, cause = body
            if not self.is_failed(rank):
                World.mark_failed(self, rank, cause)
        elif msgtype == wire.ABORT:
            origin, cause = body
            World.abort(self, origin, cause)
        elif msgtype == wire.REVOKE:
            World.revoke_ctx(self, body)
        elif msgtype == wire.AGREE:
            key, rank, value = body
            self._apply_agree(key, rank, value)
        elif msgtype == wire.DECIDED:
            key, result = body
            self._apply_decided(key, result)
        elif msgtype == wire.CTRS_REQ:
            snap = self.counters[self.my_rank].snapshot()
            self._send_control(peer, wire.CTRS_REP, (body, snap))
        elif msgtype == wire.CTRS_REP:
            reply_id, snap = body
            self._store_reply(reply_id, snap)
        elif msgtype == wire.CTRS_RESET:
            self.counters[self.my_rank].reset()
        elif msgtype == wire.RMA_PUT:
            self._rma_apply_put(peer, *body)
        elif msgtype == wire.RMA_GET:
            self._rma_apply_get(peer, *body)
        elif msgtype == wire.RMA_REP:
            reply_id, data = body
            self._store_reply(reply_id, data)
        elif msgtype == wire.RMA_ACC:
            self._rma_apply_acc(peer, *body)
        elif msgtype == wire.HB:
            pass  # the heartbeat stamp above is the whole effect

    # -- round-trip control helpers -----------------------------------------
    def _new_reply_id(self) -> tuple:
        with self._reply_cond:
            self._reply_seq += 1
            return (self.my_rank, self._reply_seq)

    def _store_reply(self, reply_id, value) -> None:
        with self._reply_cond:
            self._replies[reply_id] = value
            self._reply_cond.notify_all()

    def _await_reply(self, reply_id, peer: int,
                     timeout: Optional[float] = None):
        deadline = time.monotonic() + (self.timeout if timeout is None
                                       else timeout)
        with self._reply_cond:
            while reply_id not in self._replies:
                self.check_abort()
                if self.is_failed(peer):
                    raise RankFailure(peer, f"control reply {reply_id}",
                                      self.failure_cause(peer)
                                      if self.failure_cause(peer)
                                      is not _NOT_FAILED else None)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"control round-trip to rank {peer} timed out")
                self._reply_cond.wait(timeout=min(remaining, 0.25))
            return self._replies.pop(reply_id)

    def fetch_counters(self, rank: int) -> Optional[CounterSnapshot]:
        """Snapshot *rank*'s counters (remote fetch over the mesh);
        ``None`` when the rank is unreachable."""
        if rank == self.my_rank:
            return self.counters[rank].snapshot()
        if self.is_failed(rank) or self._closing:
            return None
        rid = self._new_reply_id()
        if not self._send_control(rank, wire.CTRS_REQ, rid):
            return None
        try:
            return self._await_reply(rid, rank, timeout=10.0)
        except (RankFailure, DeadlockError, AbortError):
            return None

    def reset_all_counters(self) -> None:
        self._broadcast_control(wire.CTRS_RESET, None)
        for c in self.counters:
            c.reset()

    # -- remote RMA service -------------------------------------------------
    def _rma_window(self, win_id):
        table = getattr(self, "_rma_windows", {}).get(win_id)
        entry = None if table is None else table.get(self.my_rank)
        if entry is None:
            raise MPIError(f"RMA request for unknown window {win_id!r}")
        return entry

    def rma_put(self, win_id, target: int, offset: int,
                data: np.ndarray) -> None:
        # synchronous on purpose: the ack guarantees the write is applied
        # before this op returns, so a closing Fence() barrier (whose
        # messages may route around the origin->target edge) can never
        # overtake it; MPI only *allows* delaying completion to the fence
        rid = self._new_reply_id()
        if not self._send_control(target, wire.RMA_PUT,
                                  (win_id, offset,
                                   np.ascontiguousarray(data), rid)):
            raise RankFailure(target, "rma_put", None)
        out = self._await_reply(rid, target)
        if isinstance(out, BaseException):
            raise out

    def rma_get(self, win_id, target: int, offset: int, count: int,
                dtype) -> np.ndarray:
        rid = self._new_reply_id()
        if not self._send_control(target, wire.RMA_GET,
                                  (win_id, offset, count,
                                   np.dtype(dtype).str, rid)):
            raise RankFailure(target, "rma_get", None)
        out = self._await_reply(rid, target)
        if isinstance(out, BaseException):
            raise out
        return out

    def rma_acc(self, win_id, target: int, offset: int,
                data: np.ndarray, op) -> None:
        rid = self._new_reply_id()
        if not self._send_control(target, wire.RMA_ACC,
                                  (win_id, offset,
                                   np.ascontiguousarray(data), op, rid)):
            raise RankFailure(target, "rma_acc", None)
        out = self._await_reply(rid, target)
        if isinstance(out, BaseException):
            raise out

    def _rma_apply_put(self, peer: int, win_id, offset, data,
                       reply_id) -> None:
        try:
            buf, lock = self._rma_window(win_id)
            flat = buf.reshape(-1)
            n = data.size
            if offset + n > flat.size:
                raise MPIError("remote Put overruns the target window")
            with lock:
                flat[offset:offset + n] = \
                    data.reshape(-1).astype(buf.dtype, copy=False)
        except MPIError as exc:
            self._send_control(peer, wire.RMA_REP, (reply_id, exc))
            return
        self._send_control(peer, wire.RMA_REP, (reply_id, None))

    def _rma_apply_get(self, peer: int, win_id, offset, count,
                       dtype_str, reply_id) -> None:
        try:
            buf, lock = self._rma_window(win_id)
            flat = buf.reshape(-1)
            if offset + count > flat.size:
                raise MPIError("remote Get overruns the target window")
            with lock:
                out = flat[offset:offset + count].astype(
                    np.dtype(dtype_str), copy=True)
            # data flows target -> origin: count the send on this side
            self.counters[self.my_rank].record_send(peer, out.nbytes)
        except MPIError as exc:
            self._send_control(peer, wire.RMA_REP, (reply_id, exc))
            return
        self._send_control(peer, wire.RMA_REP, (reply_id, out))

    def _rma_apply_acc(self, peer: int, win_id, offset, data, op,
                       reply_id) -> None:
        try:
            buf, lock = self._rma_window(win_id)
            flat = buf.reshape(-1)
            n = data.size
            if offset + n > flat.size:
                raise MPIError(
                    "remote Accumulate overruns the target window")
            with lock:
                sl = slice(offset, offset + n)
                flat[sl] = op.np_func(flat[sl], data.reshape(-1))
        except MPIError as exc:
            self._send_control(peer, wire.RMA_REP, (reply_id, exc))
            return
        self._send_control(peer, wire.RMA_REP, (reply_id, None))

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Tear down the transport: close sockets (peers read EOF), join
        receiver threads, drop shared-memory mappings."""
        if self._closing:
            return
        self._closing = True
        for ch in self._channels.values():
            ch.close()
        for t in self._recv_threads:
            t.join(timeout=2)
        self.shm.close()


# ----------------------------------------------------------------------
# run_spmd on the process backend
# ----------------------------------------------------------------------
def _spmd_child(mesh: ProcessMesh, rank: int, nranks: int, fn, args,
                kwargs, timeout, pass_comm, fault_mode, conn) -> None:
    from ..comm import Intracomm  # local import mirrors runtime.run_spmd

    socks = mesh.activate(rank)
    world = ProcessWorld(nranks, rank, mesh.session_id, socks,
                         timeout=timeout)
    if _TR.enabled:
        _TR.clear()  # drop fork-inherited events; ship only our own
    ctx = RankContext(world, rank)
    ctx.bind()
    tag: str = "ok"
    value: Any = None
    try:
        comm = Intracomm(ctx, list(range(nranks)))
        if pass_comm:
            value = fn(comm, *args, **kwargs)
        else:
            value = fn(*args, **kwargs)
    except InjectedFault as exc:
        if fault_mode == "failstop":
            world.mark_failed(rank, exc)
            tag, value = "fault", exc
        else:
            world.abort(rank, exc)
            tag, value = "err", exc
    except BaseException as exc:  # noqa: BLE001 - must propagate any error
        world.abort(rank, exc)
        tag, value = "err", _picklable_exc(exc)
    finally:
        ctx.unbind()
    snap = world.counters[rank].snapshot()
    events = _TR.events() if _TR.enabled else None
    try:
        conn.send((tag, value, snap, events))
    except Exception:  # noqa: BLE001 - e.g. unpicklable result
        try:
            conn.send(("err", RuntimeError(
                f"rank {rank} result could not be pickled back to the "
                f"driver (process backend requires picklable returns)"),
                snap, events))
        except Exception:  # noqa: BLE001 - give up, parent synthesizes
            pass
    # Completed ranks must not close their sockets until every rank is
    # done: a premature EOF would read as a failure to stragglers.  Dead
    # ranks (fault/abort) skip the wait -- their peers were already told
    # the true cause via FAILSTOP/ABORT broadcast.
    if tag == "ok":
        try:
            conn.poll(world.timeout + 30)
        except Exception:  # noqa: BLE001 - parent died; just exit
            pass
    conn.close()
    world.close()


def run_spmd_process(fn: Callable[..., Any], nranks: int,
                     args: Sequence = (), kwargs: Optional[dict] = None,
                     timeout: Optional[float] = None, pass_comm: bool = True,
                     fault_mode: str = "abort") -> List[Any]:
    """Process-backend twin of :func:`repro.mpi.runtime.run_spmd`.

    Same contract: per-rank results indexed by rank, thread-backend
    error semantics per *fault_mode*.  Differences inherent to real
    processes: *fn*, its arguments and its results cross the fork /
    pipe boundary (fn and args by fork inheritance -- closures are fine;
    results must pickle), and a rank that dies without reporting (e.g.
    SIGKILL) surfaces as a synthesized ``RuntimeError`` naming the rank
    instead of the original exception object.
    """
    if fault_mode not in ("abort", "failstop"):
        raise ValueError(f"unknown fault_mode {fault_mode!r}")
    kwargs = kwargs or {}
    mesh = ProcessMesh(nranks)
    mp = multiprocessing.get_context("fork")
    conns = []
    procs = []
    try:
        for r in range(nranks):
            parent_conn, child_conn = mp.Pipe(duplex=True)
            p = mp.Process(target=_spmd_child,
                           args=(mesh, r, nranks, fn, args, kwargs,
                                 timeout, pass_comm, fault_mode,
                                 child_conn),
                           name=f"spmd-rank-{r}", daemon=True)
            p.start()
            child_conn.close()
            procs.append(p)
            conns.append(parent_conn)
    finally:
        mesh.close_all()  # the parent is not a rank
    register_atexit_sweep(mesh.session_id)

    reports: Dict[int, tuple] = {}
    budget = (default_timeout() if timeout is None else timeout) + 30
    deadline = time.monotonic() + budget
    pending = set(range(nranks))
    while pending and time.monotonic() < deadline:
        progressed = False
        for r in list(pending):
            if conns[r].poll(0.02):
                try:
                    reports[r] = conns[r].recv()
                except (EOFError, OSError):
                    reports[r] = ("lost", None, None, None)
                pending.discard(r)
                progressed = True
            elif not procs[r].is_alive():
                # exited: one grace poll for a report racing the exit
                if conns[r].poll(0.25):
                    try:
                        reports[r] = conns[r].recv()
                    except (EOFError, OSError):
                        reports[r] = ("lost", None, None, None)
                else:
                    reports[r] = ("lost", None, None, None)
                pending.discard(r)
                progressed = True
        if not progressed:
            time.sleep(0.02)
    for r in pending:
        reports[r] = ("hung", None, None, None)

    # release completed children (they hold their sockets open until
    # every rank has reported), then reap
    for c in conns:
        try:
            c.send("release")
        except (OSError, BrokenPipeError):
            pass
    for p in procs:
        p.join(timeout=10)
        if p.is_alive():
            p.kill()
            p.join(timeout=10)
    for c in conns:
        c.close()
    sweep_session(mesh.session_id)

    results: List[Any] = [None] * nranks
    errors: List[Optional[BaseException]] = [None] * nranks
    # ranks whose death *is* the experiment under failstop (scripted
    # fault or real process death), mirroring the thread backend's
    # InjectedFault skip
    died_failstop = set()
    for r in range(nranks):
        tag, value, snap, events = reports[r]
        if events and _TR.enabled:
            _TR.absorb(events)
        if tag == "ok":
            results[r] = value
        elif tag == "fault":
            errors[r] = value
            results[r] = value
            died_failstop.add(r)
        elif tag == "err":
            errors[r] = value
        else:  # lost / hung: died without reporting
            exc = RuntimeError(
                f"rank {r} process died without reporting"
                + (f" (exit code {procs[r].exitcode})"
                   if procs[r].exitcode is not None else "")
                + ("" if tag == "lost" else " [unresponsive, killed]"))
            errors[r] = exc
            if fault_mode == "failstop":
                results[r] = exc
                died_failstop.add(r)

    for rank, exc in enumerate(errors):
        if exc is None or isinstance(exc, AbortError):
            continue
        if fault_mode == "failstop" and rank in died_failstop:
            continue
        raise exc
    if fault_mode == "abort":
        for exc in errors:
            if exc is not None:
                raise exc
    return results
