"""Exception hierarchy for the message-passing substrate."""


class MPIError(Exception):
    """Base class for all errors raised by :mod:`repro.mpi`."""


class DeadlockError(MPIError):
    """A blocking operation waited longer than the runtime's deadlock timeout.

    Raised instead of hanging forever, so mismatched send/recv pairs and
    mismatched collectives surface as test failures rather than frozen runs.
    """


class TruncationError(MPIError):
    """A received message is larger than the posted receive buffer."""


class RankError(MPIError):
    """A rank argument is out of range for the communicator."""


class TagError(MPIError):
    """A tag argument is negative or exceeds the supported upper bound."""


class CommError(MPIError):
    """A communicator is invalid (e.g. the null communicator, or used
    outside the SPMD region that created it)."""


class InjectedFault(MPIError):
    """A scripted fault from :mod:`repro.chaos` fired on this rank.

    Raised *in the faulted rank* when a crash rule triggers; peers then
    observe the ordinary :class:`AbortError` through world abort, exactly
    as they would for any other unhandled rank failure.
    """

    def __init__(self, rank, step, rule):
        super().__init__(
            f"injected fault on rank {rank} at step {step}: {rule}")
        self.rank = rank
        self.step = step
        self.rule = rule

    def __reduce__(self):
        # default Exception pickling replays __init__ with self.args (the
        # formatted message), which does not match this signature; typed
        # errors must survive pickling so the process transport can ship
        # them across rank boundaries intact
        return (InjectedFault, (self.rank, self.step, self.rule))


class RankFailure(MPIError):
    """A peer rank is dead (fail-stop) and a pending operation involved it.

    Unlike :class:`AbortError` — which tears the whole world down — a
    ``RankFailure`` is the recoverable signal of ULFM-style fault
    tolerance: the surviving ranks may ``revoke()`` and ``shrink()`` the
    communicator and continue on the survivor set.
    """

    def __init__(self, rank, op, cause=None):
        super().__init__(
            f"rank {rank} failed during {op}"
            + (f" ({cause!r})" if cause is not None else ""))
        self.rank = rank
        self.op = op
        self.cause = cause
        # causal attribution: the ODIN driver stamps the op_id of the
        # control op that was in flight when the failure surfaced
        self.op_id = None

    def __reduce__(self):
        # see InjectedFault.__reduce__; op_id rides in the state dict
        return (RankFailure, (self.rank, self.op, self.cause),
                {"op_id": self.op_id})


class CommRevokedError(MPIError):
    """The communicator was revoked (``Comm.revoke()``) by some member.

    All in-flight and future point-to-point and collective operations on
    the revoked communicator raise this, guaranteeing no member stays
    blocked on a communication pattern the failure broke.  Derived
    communicators (``dup``/``split``/``shrink`` children) are *not*
    revoked transitively — each must be revoked individually, matching
    MPI ULFM semantics.
    """


class AbortError(MPIError):
    """Raised in every rank when one rank calls :func:`abort` or dies with
    an unhandled exception, mirroring ``MPI_Abort`` semantics."""

    def __init__(self, origin_rank, cause):
        super().__init__(f"rank {origin_rank} aborted: {cause!r}")
        self.origin_rank = origin_rank
        self.cause = cause

    def __reduce__(self):
        # see InjectedFault.__reduce__
        return (AbortError, (self.origin_rank, self.cause))
