"""One-sided communication (MPI-3 RMA): windows, Put/Get/Accumulate.

The mpi4py interface this substrate mirrors exposes RMA; ODIN-style
runtimes use it for halo updates without matching receives.  Semantics
implemented here:

- ``Win.Create(buffer, comm)`` is collective; every rank exposes a local
  NumPy array.
- Active-target synchronization with ``Fence()`` (a barrier); one-sided
  ops are only legal inside an open epoch, and complete by the closing
  fence (here: immediately, under a per-target lock -- legal, as MPI only
  *allows* delay).
- Passive target ``Lock(rank)/Unlock(rank)`` for lock-based access.

Data movement is counted in the traffic counters with the true direction
(Put/Accumulate: origin->target; Get: target->origin).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..chaos.core import ENGINE as _CH
from ..metrics import REGISTRY as _MX
from ..trace import TRACER as _TR
from . import ops as _ops
from .comm import Intracomm
from .errors import MPIError, RankError

__all__ = ["Win"]


class Win:
    """An RMA window over each rank's exposed local buffer."""

    _registry_guard = threading.Lock()

    def __init__(self, comm: Intracomm, buffer: np.ndarray, win_id):
        self.comm = comm
        self._id = win_id
        self._epoch = False
        world = comm.context.world
        with Win._registry_guard:
            registry = getattr(world, "_rma_windows", None)
            if registry is None:
                registry = {}
                world._rma_windows = registry
            table = registry.setdefault(win_id, {})
        table[comm.context.rank] = (buffer, threading.RLock())
        self._table: Dict[int, Tuple[np.ndarray, threading.Lock]] = table
        comm.barrier()  # Create is collective: all buffers registered

    @classmethod
    def Create(cls, buffer, comm: Intracomm) -> "Win":
        buffer = np.asarray(buffer)
        if not buffer.flags["C_CONTIGUOUS"]:
            raise ValueError("window buffers must be C-contiguous")
        # SPMD-consistent window id from the comm's collective stream
        win_id = (comm._ctx_id, "win", comm._coll_seq)
        return cls(comm, buffer, win_id)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def Fence(self) -> None:
        """Open/continue an active-target epoch (collective barrier)."""
        self.comm.barrier()
        self._epoch = True

    def Lock(self, rank: int) -> None:
        """Begin passive-target access to *rank*'s window.

        The per-target lock is reentrant, so one-sided operations issued
        inside a Lock/Unlock epoch (same thread) nest safely.  On the
        process backend a remote target's lock lives in its process and
        is held by the RMA service around each individual operation:
        Lock/Unlock then only opens the epoch -- per-op atomicity is
        preserved, cross-op mutual exclusion between concurrent origins
        is not (see docs/INTERNALS.md §11).
        """
        if self._is_remote(rank):
            self._epoch = True
            return
        self._target_entry(rank)[1].acquire()
        self._epoch = True

    def Unlock(self, rank: int) -> None:
        if self._is_remote(rank):
            return
        self._target_entry(rank)[1].release()

    # ------------------------------------------------------------------
    # one-sided operations
    # ------------------------------------------------------------------
    def _target_entry(self, rank: int):
        if not 0 <= rank < self.comm.size:
            raise RankError(f"rank {rank} out of range")
        world_rank = self.comm.world_rank(rank)
        try:
            return self._table[world_rank]
        except KeyError:
            raise MPIError("window not exposed on target (Create not "
                           "called there?)") from None

    def _is_remote(self, rank: int) -> bool:
        """Does *rank*'s window buffer live in another process?

        Thread backend: never (all buffers share the table).  Process
        backend: any rank but our own -- those ops ship over the mesh to
        the target's RMA service (:meth:`ProcessWorld._rma_apply_put`
        and friends), which applies them under the target-side lock.
        """
        if not 0 <= rank < self.comm.size:
            raise RankError(f"rank {rank} out of range")
        return self.comm.context.world.is_remote_rank(
            self.comm.world_rank(rank))

    def _check_epoch(self):
        if not self._epoch:
            raise MPIError("one-sided operation outside an access epoch; "
                           "call Fence() or Lock() first")

    def Put(self, origin: np.ndarray, target_rank: int,
            target_offset: int = 0) -> None:
        """Write *origin* into the target window at element offset."""
        self._check_epoch()
        if _CH.enabled:
            _CH.on_op("rma", self.comm.context.rank,
                      peer=self.comm.world_rank(target_rank))
        t0 = _TR.now() if _TR.enabled else 0.0
        data = np.ascontiguousarray(origin)
        if self._is_remote(target_rank):
            self.comm.context.world.rma_put(
                self._id, self.comm.world_rank(target_rank),
                target_offset, data)
        else:
            buf, lock = self._target_entry(target_rank)
            flat = buf.reshape(-1)
            n = data.size
            if target_offset + n > flat.size:
                raise MPIError("Put overruns the target window")
            with lock:
                flat[target_offset:target_offset + n] = \
                    data.reshape(-1).astype(buf.dtype, copy=False)
        self.comm.counters().record_send(
            self.comm.world_rank(target_rank), data.nbytes)
        if _TR.enabled:
            _TR.complete("mpi.rma", "Put", t0, rank=self.comm.context.rank,
                         target=self.comm.world_rank(target_rank),
                         nbytes=data.nbytes)
        if _MX.enabled:
            _MX.inc("mpi.rma.bytes", data.nbytes, op="Put")

    def Get(self, origin: np.ndarray, target_rank: int,
            target_offset: int = 0) -> None:
        """Read from the target window into *origin*."""
        self._check_epoch()
        if _CH.enabled:
            _CH.on_op("rma", self.comm.context.rank,
                      peer=self.comm.world_rank(target_rank))
        t0 = _TR.now() if _TR.enabled else 0.0
        world = self.comm.context.world
        target_world = self.comm.world_rank(target_rank)
        out = origin.reshape(-1)
        if self._is_remote(target_rank):
            got = world.rma_get(self._id, target_world, target_offset,
                                out.size, origin.dtype)
            out[...] = got
            # the target-side service recorded its send; count only the
            # receive here
        else:
            buf, lock = self._target_entry(target_rank)
            flat = buf.reshape(-1)
            n = out.size
            if target_offset + n > flat.size:
                raise MPIError("Get overruns the target window")
            with lock:
                out[...] = flat[target_offset:target_offset + n].astype(
                    origin.dtype, copy=False)
            # data flowed target -> origin
            world.counters[target_world].record_send(
                self.comm.context.rank, out.nbytes)
        self.comm.counters().record_recv(target_world, out.nbytes)
        if _TR.enabled:
            _TR.complete("mpi.rma", "Get", t0, rank=self.comm.context.rank,
                         target=target_world, nbytes=out.nbytes)
        if _MX.enabled:
            _MX.inc("mpi.rma.bytes", out.nbytes, op="Get")

    def Accumulate(self, origin: np.ndarray, target_rank: int,
                   target_offset: int = 0,
                   op: _ops.Op = _ops.SUM) -> None:
        """Combine *origin* into the target window with *op* (atomically
        with respect to other accumulates on the same target)."""
        self._check_epoch()
        if _CH.enabled:
            _CH.on_op("rma", self.comm.context.rank,
                      peer=self.comm.world_rank(target_rank))
        t0 = _TR.now() if _TR.enabled else 0.0
        data = np.ascontiguousarray(origin)
        if self._is_remote(target_rank):
            self.comm.context.world.rma_acc(
                self._id, self.comm.world_rank(target_rank),
                target_offset, data, op)
        else:
            buf, lock = self._target_entry(target_rank)
            flat = buf.reshape(-1)
            n = data.size
            if target_offset + n > flat.size:
                raise MPIError("Accumulate overruns the target window")
            with lock:
                sl = slice(target_offset, target_offset + n)
                flat[sl] = op.np_func(flat[sl], data.reshape(-1))
        self.comm.counters().record_send(
            self.comm.world_rank(target_rank), data.nbytes)
        if _TR.enabled:
            _TR.complete("mpi.rma", "Accumulate", t0,
                         rank=self.comm.context.rank,
                         target=self.comm.world_rank(target_rank),
                         nbytes=data.nbytes)
        if _MX.enabled:
            _MX.inc("mpi.rma.bytes", data.nbytes, op="Accumulate")

    def Free(self) -> None:
        """Collective teardown."""
        self.comm.barrier()
        self._table.pop(self.comm.context.rank, None)
        self._epoch = False

    def __enter__(self) -> "Win":
        return self

    def __exit__(self, *exc) -> None:
        self.Free()
