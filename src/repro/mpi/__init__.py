"""repro.mpi -- an MPI-like message-passing substrate on a thread SPMD runtime.

The public surface follows mpi4py conventions (the substrate documented in
the project's HPC guides): lowercase comm methods move pickled Python
objects, uppercase methods move NumPy buffers.  See
:mod:`repro.mpi.runtime` for how the offline substitution of real MPI
preserves the behaviours that matter.

Quick start::

    from repro import mpi

    def program(comm):
        rank = comm.Get_rank()
        data = comm.bcast({'a': 7} if rank == 0 else None, root=0)
        return comm.allreduce(rank)

    results = mpi.run_spmd(program, nranks=4)
"""

from .comm import (Group, Intracomm, collective_label_catalogue,
                   set_collective_tuning)
from .cart import CartComm, dims_create
from .costmodel import (COLLECTIVE_ALGORITHMS, COMMODITY_CLUSTER, ETHERNET,
                        FAST_INTERCONNECT, FLAT, CostModel, Topology,
                        collective_costs, crossover_size, select_algorithm)
from .counters import CommCounters, CounterSnapshot
from .datatypes import (BOOL, BYTE, CHAR, C_DOUBLE_COMPLEX, C_FLOAT_COMPLEX,
                        DOUBLE, FLOAT, INT, INT32_T, INT64_T, LONG,
                        LONG_LONG, SHORT, UNSIGNED, UNSIGNED_LONG, Datatype,
                        from_numpy_dtype)
from .errors import (AbortError, CommError, CommRevokedError, DeadlockError,
                     InjectedFault, MPIError, RankError, RankFailure,
                     TagError, TruncationError)
from .io import (MODE_APPEND, MODE_CREATE, MODE_RDONLY, MODE_RDWR,
                 MODE_WRONLY, File)
from .ops import (BAND, BOR, BXOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC,
                  PROD, SUM, Op, create_op)
from .request import Request, RecvRequest, SendRequest, testall, waitall
from .rma import Win
from .runtime import (RankContext, World, current_context, default_timeout,
                      run_spmd, set_default_timeout)
from .status import ANY_SOURCE, ANY_TAG, Status
from .transport import BACKENDS, resolve_backend


def get_comm_world() -> Intracomm:
    """The world communicator of the SPMD region running this thread."""
    ctx = current_context()
    return Intracomm(ctx, list(range(ctx.world.nranks)))


__all__ = [
    # runtime
    "run_spmd", "World", "RankContext", "current_context", "get_comm_world",
    "default_timeout", "set_default_timeout",
    # transport backends
    "BACKENDS", "resolve_backend",
    # comm
    "Intracomm", "Group", "CartComm", "dims_create",
    # status / requests
    "Status", "ANY_SOURCE", "ANY_TAG", "Request", "SendRequest",
    "RecvRequest", "waitall", "testall",
    # datatypes
    "Datatype", "from_numpy_dtype", "BYTE", "CHAR", "SHORT", "INT", "LONG",
    "LONG_LONG", "UNSIGNED", "UNSIGNED_LONG", "FLOAT", "DOUBLE",
    "C_FLOAT_COMPLEX", "C_DOUBLE_COMPLEX", "BOOL", "INT32_T", "INT64_T",
    # ops
    "Op", "create_op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND",
    "BOR", "BXOR", "MAXLOC", "MINLOC",
    # errors
    "MPIError", "DeadlockError", "TruncationError", "RankError", "TagError",
    "CommError", "AbortError", "InjectedFault", "RankFailure",
    "CommRevokedError",
    # instrumentation / adaptive collectives
    "CommCounters", "CounterSnapshot", "CostModel", "COMMODITY_CLUSTER",
    "FAST_INTERCONNECT", "ETHERNET", "Topology", "FLAT",
    "COLLECTIVE_ALGORITHMS", "collective_costs", "select_algorithm",
    "crossover_size", "set_collective_tuning",
    "collective_label_catalogue",
    # MPI-IO / RMA
    "Win", "File", "MODE_RDONLY", "MODE_WRONLY", "MODE_RDWR", "MODE_CREATE",
    "MODE_APPEND",
]
