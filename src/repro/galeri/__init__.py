"""repro.galeri -- gallery of example maps and matrices (Galeri equivalent).

Per Table I: "Examples of common maps and matrices."  These are the
workhorses of the benchmark suite: structured-grid Laplacians in 1/2/3-D,
convection-diffusion (nonsymmetric), biharmonic, tridiagonal, and random
SPD matrices, all assembled directly into distributed
:class:`~repro.tpetra.crsmatrix.CrsMatrix` objects.
"""

from .maps import create_map
from .matrices import (anisotropic_2d, biharmonic_1d,
                       convection_diffusion_2d, create_matrix, laplace_1d,
                       laplace_2d, laplace_3d, random_spd, tridiag)

__all__ = ["create_map", "create_matrix", "laplace_1d", "laplace_2d",
           "laplace_3d", "convection_diffusion_2d", "anisotropic_2d",
           "biharmonic_1d",
           "tridiag", "random_spd"]
