"""Matrix gallery (Galeri's CrsMatrices module).

All constructors are collective and return fill-complete distributed
matrices on a given (or default contiguous) row map.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mpi import Intracomm
from ..tpetra import CrsMatrix, Map

__all__ = ["laplace_1d", "laplace_2d", "laplace_3d",
           "convection_diffusion_2d", "anisotropic_2d", "biharmonic_1d",
           "tridiag", "random_spd", "create_matrix"]


def _default_map(n: int, comm: Intracomm, map_: Optional[Map]) -> Map:
    if map_ is not None:
        if map_.num_global != n:
            raise ValueError(f"map has {map_.num_global} indices, matrix "
                             f"needs {n}")
        return map_
    return Map.create_contiguous(n, comm)


def tridiag(n: int, comm: Intracomm, a: float = 2.0, b: float = -1.0,
            c: float = -1.0, map_: Optional[Map] = None) -> CrsMatrix:
    """Tridiagonal [c, a, b] matrix."""
    m = _default_map(n, comm, map_)
    A = CrsMatrix(m)
    for gid in m.my_gids:
        A.insert_global_values(gid, [gid], [a])
        if gid > 0:
            A.insert_global_values(gid, [gid - 1], [c])
        if gid < n - 1:
            A.insert_global_values(gid, [gid + 1], [b])
    A.fillComplete()
    return A


def laplace_1d(n: int, comm: Intracomm,
               map_: Optional[Map] = None) -> CrsMatrix:
    """1-D Dirichlet Laplacian: stencil [-1, 2, -1]."""
    return tridiag(n, comm, 2.0, -1.0, -1.0, map_=map_)


def laplace_2d(nx: int, ny: int, comm: Intracomm,
               map_: Optional[Map] = None) -> CrsMatrix:
    """5-point 2-D Dirichlet Laplacian on an nx-by-ny grid.

    Row gid = iy*nx + ix; the canonical SPD test problem of the solver
    benchmarks.
    """
    n = nx * ny
    m = _default_map(n, comm, map_)
    A = CrsMatrix(m)
    for gid in m.my_gids:
        ix = int(gid) % nx
        iy = int(gid) // nx
        A.insert_global_values(gid, [gid], [4.0])
        if ix > 0:
            A.insert_global_values(gid, [gid - 1], [-1.0])
        if ix < nx - 1:
            A.insert_global_values(gid, [gid + 1], [-1.0])
        if iy > 0:
            A.insert_global_values(gid, [gid - nx], [-1.0])
        if iy < ny - 1:
            A.insert_global_values(gid, [gid + nx], [-1.0])
    A.fillComplete()
    return A


def laplace_3d(nx: int, ny: int, nz: int, comm: Intracomm,
               map_: Optional[Map] = None) -> CrsMatrix:
    """7-point 3-D Dirichlet Laplacian on an nx-by-ny-by-nz grid."""
    n = nx * ny * nz
    m = _default_map(n, comm, map_)
    A = CrsMatrix(m)
    nxy = nx * ny
    for gid in m.my_gids:
        g = int(gid)
        ix = g % nx
        iy = (g // nx) % ny
        iz = g // nxy
        A.insert_global_values(gid, [gid], [6.0])
        if ix > 0:
            A.insert_global_values(gid, [gid - 1], [-1.0])
        if ix < nx - 1:
            A.insert_global_values(gid, [gid + 1], [-1.0])
        if iy > 0:
            A.insert_global_values(gid, [gid - nx], [-1.0])
        if iy < ny - 1:
            A.insert_global_values(gid, [gid + nx], [-1.0])
        if iz > 0:
            A.insert_global_values(gid, [gid - nxy], [-1.0])
        if iz < nz - 1:
            A.insert_global_values(gid, [gid + nxy], [-1.0])
    A.fillComplete()
    return A


def convection_diffusion_2d(nx: int, ny: int, comm: Intracomm,
                            conv_x: float = 10.0, conv_y: float = 10.0,
                            map_: Optional[Map] = None) -> CrsMatrix:
    """Upwinded convection-diffusion on a unit square (nonsymmetric).

    -lap(u) + (conv_x, conv_y) . grad(u), first-order upwind differences;
    Galeri's Recirc2D-style nonsymmetric test matrix for GMRES/BiCGStab.
    """
    n = nx * ny
    m = _default_map(n, comm, map_)
    hx = 1.0 / (nx + 1)
    hy = 1.0 / (ny + 1)
    A = CrsMatrix(m)
    for gid in m.my_gids:
        ix = int(gid) % nx
        iy = int(gid) // nx
        # diffusion
        diag = 2.0 / hx ** 2 + 2.0 / hy ** 2
        west = east = -1.0 / hx ** 2
        south = north = -1.0 / hy ** 2
        # upwind convection
        if conv_x >= 0:
            diag += conv_x / hx
            west += -conv_x / hx
        else:
            diag += -conv_x / hx
            east += conv_x / hx
        if conv_y >= 0:
            diag += conv_y / hy
            south += -conv_y / hy
        else:
            diag += -conv_y / hy
            north += conv_y / hy
        A.insert_global_values(gid, [gid], [diag])
        if ix > 0:
            A.insert_global_values(gid, [gid - 1], [west])
        if ix < nx - 1:
            A.insert_global_values(gid, [gid + 1], [east])
        if iy > 0:
            A.insert_global_values(gid, [gid - nx], [south])
        if iy < ny - 1:
            A.insert_global_values(gid, [gid + nx], [north])
    A.fillComplete()
    return A


def anisotropic_2d(nx: int, ny: int, comm: Intracomm,
                   epsilon: float = 1e-2,
                   map_: Optional[Map] = None) -> CrsMatrix:
    """Anisotropic diffusion -u_xx - eps*u_yy (Galeri's Stretched2D role).

    The classic stress test for point smoothers and aggregation-based
    multigrid: coupling in y is epsilon-weak, so errors smooth in x only.
    """
    n = nx * ny
    m = _default_map(n, comm, map_)
    A = CrsMatrix(m)
    for gid in m.my_gids:
        ix = int(gid) % nx
        iy = int(gid) // nx
        A.insert_global_values(gid, [gid], [2.0 + 2.0 * epsilon])
        if ix > 0:
            A.insert_global_values(gid, [gid - 1], [-1.0])
        if ix < nx - 1:
            A.insert_global_values(gid, [gid + 1], [-1.0])
        if iy > 0:
            A.insert_global_values(gid, [gid - nx], [-epsilon])
        if iy < ny - 1:
            A.insert_global_values(gid, [gid + nx], [-epsilon])
    A.fillComplete()
    return A


def biharmonic_1d(n: int, comm: Intracomm,
                  map_: Optional[Map] = None) -> CrsMatrix:
    """1-D biharmonic stencil [1, -4, 6, -4, 1] (ill-conditioned SPD)."""
    m = _default_map(n, comm, map_)
    A = CrsMatrix(m)
    stencil = {-2: 1.0, -1: -4.0, 0: 6.0, 1: -4.0, 2: 1.0}
    for gid in m.my_gids:
        for off, val in stencil.items():
            col = int(gid) + off
            if 0 <= col < n:
                A.insert_global_values(gid, [col], [val])
    A.fillComplete()
    return A


def random_spd(n: int, comm: Intracomm, density: float = 0.05,
               seed: int = 0, map_: Optional[Map] = None) -> CrsMatrix:
    """Random sparse diagonally-dominant SPD matrix (reproducible).

    Every rank draws the same global pattern from the seed, then keeps its
    rows, so the matrix is independent of the rank count.
    """
    m = _default_map(n, comm, map_)
    rng = np.random.default_rng(seed)
    nnz_target = max(n, int(density * n * n // 2))
    rows = rng.integers(0, n, size=nnz_target)
    cols = rng.integers(0, n, size=nnz_target)
    vals = rng.uniform(-1.0, 1.0, size=nnz_target)
    A = CrsMatrix(m)
    mine = m.lid(rows) >= 0
    mine_t = m.lid(cols) >= 0
    strength = np.zeros(n)
    np.add.at(strength, rows, np.abs(vals))
    np.add.at(strength, cols, np.abs(vals))
    # symmetric off-diagonal entries, rows owned locally
    for r, c, v in zip(rows[mine], cols[mine], vals[mine]):
        if r != c:
            A.insert_global_values(int(r), [int(c)], [float(v)])
    for r, c, v in zip(rows[mine_t], cols[mine_t], vals[mine_t]):
        if r != c:
            A.insert_global_values(int(c), [int(r)], [float(v)])
    for gid in m.my_gids:
        A.insert_global_values(int(gid), [int(gid)],
                               [float(strength[gid]) + 1.0])
    A.fillComplete()
    return A


def create_matrix(name: str, comm: Intracomm, **params) -> CrsMatrix:
    """Galeri-style factory.

    ``create_matrix("Laplace2D", comm, nx=32, ny=32)`` etc.  Names:
    Tridiag, Laplace1D, Laplace2D, Laplace3D, Recirc2D (convection-
    diffusion), Biharmonic1D, RandomSPD.
    """
    key = name.strip().lower()
    if key == "tridiag":
        return tridiag(params.pop("n"), comm, **params)
    if key == "laplace1d":
        return laplace_1d(params.pop("n"), comm, **params)
    if key == "laplace2d":
        return laplace_2d(params.pop("nx"), params.pop("ny"), comm, **params)
    if key == "laplace3d":
        return laplace_3d(params.pop("nx"), params.pop("ny"),
                          params.pop("nz"), comm, **params)
    if key in ("recirc2d", "convdiff2d"):
        return convection_diffusion_2d(params.pop("nx"), params.pop("ny"),
                                       comm, **params)
    if key in ("anisotropic2d", "stretched2d"):
        return anisotropic_2d(params.pop("nx"), params.pop("ny"), comm,
                              **params)
    if key == "biharmonic1d":
        return biharmonic_1d(params.pop("n"), comm, **params)
    if key == "randomspd":
        return random_spd(params.pop("n"), comm, **params)
    raise ValueError(f"unknown matrix gallery name {name!r}")
