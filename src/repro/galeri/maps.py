"""Map gallery (Galeri's Maps module)."""

from __future__ import annotations

from ..mpi import Intracomm
from ..tpetra import Map

__all__ = ["create_map"]


def create_map(kind: str, num_global: int, comm: Intracomm, **kwargs) -> Map:
    """Create a map by gallery name.

    - ``"Linear"``      -- uniform contiguous blocks (Galeri's Linear)
    - ``"Interlaced"``  -- cyclic round-robin (Galeri's Interlaced)
    - ``"Random"``      -- pseudo-random but reproducible partition
    """
    key = kind.strip().lower()
    if key == "linear":
        return Map.create_contiguous(num_global, comm)
    if key == "interlaced":
        return Map.create_cyclic(num_global, comm)
    if key == "random":
        import numpy as np
        seed = int(kwargs.get("seed", 0))
        rng = np.random.default_rng(seed)
        owner = rng.integers(0, comm.size, size=num_global)
        my = np.nonzero(owner == comm.rank)[0].astype(np.int64)
        # every rank draws the same sequence, so the partition is consistent
        return Map(num_global, my, comm, kind="arbitrary")
    raise ValueError(f"unknown map kind {kind!r}")
