"""Log-bucketed histograms.

Fixed-size exact statistics (count, sum, min, max) plus a sparse map of
geometric buckets.  Bucket *i* covers ``(base**(i-1), base**i]`` for
positive observations; zero and negative values land in the dedicated
``le=0`` bucket.  The geometric layout means a histogram over nine
decades of latency (10 ns .. 10 s) needs ~30 buckets at the default
base of 2 -- bounded memory regardless of the distribution, which is
why Prometheus/HdrHistogram-style tooling uses the same shape.

Histograms merge exactly: buckets with equal (base, index) add, so
per-rank histograms can be combined into a global one without losing
anything the per-rank ones knew.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Histogram"]


class Histogram:
    """A thread-safe, log-bucketed histogram of nonnegative-ish samples."""

    __slots__ = ("name", "labels", "base", "count", "sum", "min", "max",
                 "buckets", "_log_base", "_lock")

    def __init__(self, name: str, base: float = 2.0, labels=()):
        if base <= 1.0:
            raise ValueError("histogram base must be > 1")
        self.name = name
        self.labels: Tuple[Tuple[str, object], ...] = tuple(labels)
        self.base = float(base)
        self._log_base = math.log(self.base)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # bucket index -> count; index i covers (base**(i-1), base**i];
        # None is the underflow bucket for values <= 0
        self.buckets: Dict[Optional[int], int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # bucket geometry
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> Optional[int]:
        """The bucket index holding *value* (None: the <=0 bucket)."""
        if value <= 0.0:
            return None
        # ceil of log_base(value), nudged so exact powers stay in their
        # own bucket: base**i maps to index i, base**i + eps to i+1
        idx = math.ceil(math.log(value) / self._log_base - 1e-12)
        return int(idx)

    def bucket_upper(self, index: Optional[int]) -> float:
        """Inclusive upper bound of a bucket (0.0 for the <=0 bucket)."""
        if index is None:
            return 0.0
        return self.base ** index

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        idx = self.bucket_index(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (bases must match)."""
        if other.base != self.base:
            raise ValueError(
                f"cannot merge histograms with bases {self.base} and "
                f"{other.base}")
        with other._lock:
            o_count, o_sum = other.count, other.sum
            o_min, o_max = other.min, other.max
            o_buckets = dict(other.buckets)
        with self._lock:
            self.count += o_count
            self.sum += o_sum
            if o_min is not None and (self.min is None or o_min < self.min):
                self.min = o_min
            if o_max is not None and (self.max is None or o_max > self.max):
                self.max = o_max
            for idx, n in o_buckets.items():
                self.buckets[idx] = self.buckets.get(idx, 0) + n
        return self

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper bound of the bucket holding
        the q-th sample (exact min/max for q = 0 / 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self.count:
                return 0.0
            if q == 0.0:
                return self.min
            if q == 1.0:
                return self.max
            target = q * self.count
            seen = 0
            for idx in self._sorted_indices():
                seen += self.buckets[idx]
                if seen >= target:
                    return min(self.bucket_upper(idx), self.max)
            return self.max

    def quantile_est(self, q: float) -> float:
        """Interpolated q-quantile: linear interpolation *within* the
        bucket holding the q-th sample, clamped to the exact observed
        [min, max].

        Tighter than :meth:`quantile` (which reports the bucket's upper
        bound and therefore overestimates by up to a factor of ``base``):
        the error is bounded by the bucket width around the true value
        instead of the full bucket.  Exact min/max at q = 0 / 1.
        """
        with self._lock:
            return self._quantile_est_locked(q)

    def _quantile_est_locked(self, q: float) -> float:
        # the lock is non-reentrant, so to_dict (which already holds it)
        # calls this variant directly
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for idx in self._sorted_indices():
            n = self.buckets[idx]
            if seen + n >= target:
                if idx is None:
                    # the <=0 underflow bucket has no geometric width;
                    # interpolate between the observed min and 0
                    lo, hi = self.min, min(0.0, self.max)
                else:
                    lo, hi = self.base ** (idx - 1), self.base ** idx
                frac = (target - seen) / n
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            seen += n
        return self.max

    def _sorted_indices(self) -> List[Optional[int]]:
        return sorted(self.buckets,
                      key=lambda i: -math.inf if i is None else i)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "type": "histogram",
                "name": self.name,
                "labels": dict(self.labels),
                "base": self.base,
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "quantiles": {
                    "p50": self._quantile_est_locked(0.50),
                    "p95": self._quantile_est_locked(0.95),
                    "p99": self._quantile_est_locked(0.99),
                },
                "buckets": [
                    {"le": self.bucket_upper(idx), "count": n}
                    for idx, n in sorted(
                        self.buckets.items(),
                        key=lambda kv: -math.inf if kv[0] is None
                        else kv[0])
                ],
            }

    def __repr__(self):
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean:.3g}, max={self.max})")
