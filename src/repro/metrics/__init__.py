"""Process-wide metrics (``repro.metrics``).

The counting half of the observability system (its sibling,
:mod:`repro.trace`, records *when*; this package records *how much*):
counters, gauges, and log-bucketed histograms, labelled per rank /
kernel / algorithm, with text, JSON, and Prometheus exposition.

Instrumented across the stack when enabled:

- ``seamless.jit.*``      -- compile time, cache hits/misses, per-kernel calls
- ``seamless.elementwise.*`` / ``seamless.vectorize.*`` -- dispatch counts
- ``tpetra.plan.*``       -- import/export plan builds, remote-LID
  resolution, pack/unpack bytes
- ``mpi.coll.*``          -- calls and bytes per collective algorithm
- ``mpi.rma.*``           -- one-sided bytes by operation
- ``odin.worker.*``       -- per-opcode latency histograms
- ``solver.*``            -- iteration counts, final residuals

Enable with ``REPRO_METRICS=1`` or :func:`repro.metrics.enable`; any
benchmark accepts ``--metrics out.json``.  Disabled cost is one
attribute-load-plus-branch per site, exactly like ``repro.trace``.
"""

from .hist import Histogram
from .registry import Counter, Gauge, MetricsRegistry
from . import report as _report_mod

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "get_registry", "enabled", "enable", "disable", "set_enabled",
    "clear", "counter", "gauge", "histogram", "inc", "set_gauge",
    "observe", "report", "to_json", "exposition",
]

# The process-wide singleton every instrumentation site references.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def enabled() -> bool:
    """Are metrics on? (``REPRO_METRICS=1`` or :func:`enable`.)"""
    return REGISTRY.enabled


def enable() -> None:
    REGISTRY.enable()


def disable() -> None:
    REGISTRY.disable()


def set_enabled(flag: bool) -> None:
    REGISTRY.enabled = bool(flag)


def clear() -> None:
    REGISTRY.clear()


def counter(name: str, **labels) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, base: float = 2.0, **labels) -> Histogram:
    return REGISTRY.histogram(name, base=base, **labels)


def inc(name: str, amount=1, **labels) -> None:
    if REGISTRY.enabled:
        REGISTRY.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    if REGISTRY.enabled:
        REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    if REGISTRY.enabled:
        REGISTRY.observe(name, value, **labels)


def report(registry: MetricsRegistry = None) -> str:
    return _report_mod.report(registry if registry is not None
                              else REGISTRY)


def to_json(registry: MetricsRegistry = None, include_timers: bool = True,
            indent=None) -> str:
    return _report_mod.to_json(registry if registry is not None
                               else REGISTRY,
                               include_timers=include_timers,
                               indent=indent)


def exposition(registry: MetricsRegistry = None) -> str:
    return _report_mod.exposition(registry if registry is not None
                                  else REGISTRY)
