"""Metric exposition: aligned text, JSON, Prometheus text format.

Three views over one registry snapshot:

- :func:`report` -- a human-readable table grouped by metric name, one
  row per label set (counters/gauges show the value, histograms show
  count/mean and interpolated p50/p95/p99 plus the exact max).
- :func:`to_json` -- a JSON document that round-trips through
  ``json.loads``; with ``include_timers`` the global
  ``TimeMonitor.to_dict()`` table is embedded under ``"time_monitor"``
  so legacy named timers and metrics land in one artifact.
- :func:`exposition` -- Prometheus text exposition format 0.0.4
  (``# TYPE`` headers, ``name{label="v"} value`` samples; histograms as
  cumulative ``_bucket`` series plus ``_sum``/``_count``).
"""

from __future__ import annotations

import io
import json
import math
import re
from typing import Optional

from .hist import Histogram
from .registry import Counter, Gauge, MetricsRegistry

__all__ = ["report", "to_json", "exposition"]

_INVALID_PROM = re.compile(r"[^a-zA-Z0-9_:]")


def _fmt_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in
                           sorted(labels.items(),
                                  key=lambda kv: kv[0])) + "}"


def report(registry: MetricsRegistry) -> str:
    """The registry as an aligned plain-text table."""
    metrics = registry.metrics()
    if not metrics:
        return "(no metrics recorded)\n"
    out = io.StringIO()
    rows = []
    for m in metrics:
        label = m.name + _fmt_labels(dict(m.labels))
        if isinstance(m, Histogram):
            # interpolated estimates: tighter than the bucket-upper-bound
            # quantile() while staying O(buckets)
            detail = (f"count={m.count}  mean={m.mean:.6g}  "
                      f"p50={m.quantile_est(0.5):.6g}  "
                      f"p95={m.quantile_est(0.95):.6g}  "
                      f"p99={m.quantile_est(0.99):.6g}  "
                      f"max={0.0 if m.max is None else m.max:.6g}")
            rows.append((label, "histogram", detail))
        elif isinstance(m, Gauge):
            rows.append((label, "gauge", _fmt_value(m.value)))
        else:
            rows.append((label, "counter", _fmt_value(m.value)))
    width = max(len(r[0]) for r in rows) + 2
    out.write(f"{'metric':<{width}}{'type':<11}value\n")
    out.write("-" * (width + 16) + "\n")
    for label, kind, detail in rows:
        out.write(f"{label:<{width}}{kind:<11}{detail}\n")
    return out.getvalue()


def to_json(registry: MetricsRegistry, include_timers: bool = True,
            indent: Optional[int] = None) -> str:
    """The registry snapshot as a JSON string.

    ``include_timers`` merges the global
    :meth:`~repro.teuchos.timer.TimeMonitor.to_dict` table, so one file
    carries both the metric families and the named phase timers.
    """
    doc = {
        "producer": "repro.metrics",
        "metrics": [m.to_dict() for m in registry.metrics()],
    }
    if include_timers:
        from ..teuchos.timer import TimeMonitor
        doc["time_monitor"] = TimeMonitor.to_dict()
    return json.dumps(doc, indent=indent, default=str)


def _prom_name(name: str) -> str:
    name = _INVALID_PROM.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for k, v in sorted(merged.items(), key=lambda kv: kv[0]):
        sv = str(v).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{_prom_name(k)}="{sv}"')
    return "{" + ",".join(parts) + "}"


def _prom_float(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def exposition(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of the registry (scrape-ready)."""
    out = io.StringIO()
    typed = set()
    for m in registry.metrics():
        name = _prom_name(m.name)
        labels = dict(m.labels)
        if isinstance(m, Histogram):
            if name not in typed:
                out.write(f"# TYPE {name} histogram\n")
                typed.add(name)
            cumulative = 0
            for entry in m.to_dict()["buckets"]:
                cumulative += entry["count"]
                le = _prom_float(entry["le"])
                out.write(f"{name}_bucket"
                          f"{_prom_labels(labels, {'le': le})} "
                          f"{cumulative}\n")
            out.write(f"{name}_bucket"
                      f"{_prom_labels(labels, {'le': '+Inf'})} "
                      f"{m.count}\n")
            out.write(f"{name}_sum{_prom_labels(labels)} "
                      f"{_prom_float(m.sum)}\n")
            out.write(f"{name}_count{_prom_labels(labels)} {m.count}\n")
        else:
            kind = "gauge" if isinstance(m, Gauge) else "counter"
            if name not in typed:
                out.write(f"# TYPE {name} {kind}\n")
                typed.add(name)
            out.write(f"{name}{_prom_labels(labels)} "
                      f"{_prom_float(m.value)}\n")
    return out.getvalue()
