"""The process-wide metrics registry: counters, gauges, histograms.

Mirrors :mod:`repro.trace`'s design contract: instrumented sites hold a
reference to the singleton registry and guard every emission with
``if _MX.enabled:``, so the disabled path costs a single
attribute-load-plus-branch.  When enabled, metric handles are resolved
by ``(name, sorted labels)`` key -- a dict probe -- and each metric
updates under its own small lock, so unrelated hot paths never contend.

Labels attribute samples to ranks, kernels, algorithms, etc.::

    _MX.counter("seamless.jit.cache_hits", fn="saxpy").inc()
    _MX.histogram("odin.worker.op_seconds", op="UFUNC", worker=2).observe(dt)

Per-rank labelling is a convention, not a mechanism: any site that knows
its rank passes ``rank=<world rank>`` and reports group by it.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple, Union

from .hist import Histogram

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelItems = Tuple[Tuple[str, object], ...]
MetricKey = Tuple[str, LabelItems]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "").strip().lower() in (
        "1", "true", "yes", "on")


def _label_items(labels: dict) -> LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (events, bytes, iterations)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = tuple(labels)
        self.value: Union[int, float] = 0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}

    def __repr__(self):
        return f"Counter({self.name!r}, {dict(self.labels)}, {self.value})"


class Gauge:
    """A value that can move both ways (queue depth, residual norm)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = tuple(labels)
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def to_dict(self) -> dict:
        return {"type": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value}

    def __repr__(self):
        return f"Gauge({self.name!r}, {dict(self.labels)}, {self.value})"


class MetricsRegistry:
    """Process-wide, label-aware registry of named metrics.

    One instance (:data:`repro.metrics.REGISTRY`) backs the whole
    process; tests may build private registries.  Metric identity is
    ``(name, labels)``: the same name with different labels is a family
    of independent series, exactly Prometheus's model.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled: bool = _env_enabled() if enabled is None \
            else bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[MetricKey, object] = {}

    # ------------------------------------------------------------------
    # handle resolution
    # ------------------------------------------------------------------
    def _resolve(self, name: str, labels: dict, cls, **ctor):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels=key[1], **ctor)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} {dict(labels)!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._resolve(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._resolve(name, labels, Gauge)

    def histogram(self, name: str, base: float = 2.0,
                  **labels) -> Histogram:
        return self._resolve(name, labels, Histogram, base=base)

    # ------------------------------------------------------------------
    # one-shot emission helpers (resolve + update)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: Union[int, float] = 1,
            **labels) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # control / introspection
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every registered metric (keeps the enabled flag)."""
        with self._lock:
            self._metrics.clear()

    def metrics(self) -> List[object]:
        """Snapshot list of live metric objects, sorted by (name, labels)."""
        with self._lock:
            out = list(self._metrics.items())
        out.sort(key=lambda kv: (kv[0][0], [(k, str(v))
                                            for k, v in kv[0][1]]))
        return [metric for _key, metric in out]

    def get(self, name: str, **labels):
        """The metric registered under (name, labels), or None."""
        return self._metrics.get((name, _label_items(labels)))

    def __len__(self):
        return len(self._metrics)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, {len(self._metrics)} metrics)"
