"""Greedy distance-1 matrix coloring (the EpetraExt coloring extension).

Colors the symmetrized sparsity pattern so that no two adjacent rows share
a color -- the classic prerequisite for compressed finite-difference
Jacobian evaluation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..tpetra import CrsMatrix, Vector

__all__ = ["greedy_coloring"]


def greedy_coloring(A: CrsMatrix) -> Vector:
    """Color the global pattern; returns the color of each row as a
    distributed integer Vector on the row map.  Collective.

    Greedy first-fit over rows in natural order on the gathered pattern:
    deterministic and within a small factor of optimal for the structured
    matrices in the gallery.
    """
    pattern = A.to_scipy_global(root=None)
    sym = (abs(pattern) + abs(pattern.T)).tocsr()
    n = sym.shape[0]
    colors = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        nbrs = sym.indices[sym.indptr[v]:sym.indptr[v + 1]]
        used = set(colors[u] for u in nbrs if colors[u] >= 0 and u != v)
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    out = Vector(A.row_map, dtype=np.float64)
    out.local_view[...] = colors[A.row_map.my_gids]
    return out
