"""Residual checkers and error measures for solver testing."""

from __future__ import annotations

from ..tpetra import Operator, Vector

__all__ = ["residual_check", "solution_error"]


def residual_check(op: Operator, x: Vector, b: Vector,
                   tol: float = 1e-8) -> bool:
    """True when ||b - Ax|| / ||b|| <= tol.  Collective."""
    r = Vector(b.map, dtype=b.dtype)
    op.apply(x, r)
    r.update(1.0, b, -1.0)
    bnorm = b.norm2() or 1.0
    return r.norm2() / bnorm <= tol


def solution_error(x: Vector, x_exact: Vector,
                   relative: bool = True) -> float:
    """||x - x_exact|| (optionally relative).  Collective."""
    diff = x - x_exact
    err = diff.norm2()
    if relative:
        err /= (x_exact.norm2() or 1.0)
    return float(err)
