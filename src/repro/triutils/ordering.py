"""Fill-reducing / bandwidth-reducing orderings.

Reverse Cuthill-McKee on the symmetrized pattern: the classic companion to
the direct solvers (Amesos) and ILU preconditioners, whose fill depends
strongly on the row ordering.  ``rcm_map`` turns the permutation into a
Tpetra map so the reordered matrix stays distributed.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..tpetra import CrsMatrix, Map

__all__ = ["reverse_cuthill_mckee", "rcm_map", "bandwidth",
           "permute_matrix"]


def reverse_cuthill_mckee(A: CrsMatrix) -> np.ndarray:
    """RCM permutation of the global pattern.  Collective.

    Returns ``perm`` with ``perm[new_index] = old_index`` (the scipy
    convention).
    """
    pattern = A.to_scipy_global(root=None)
    sym = ((abs(pattern) + abs(pattern.T)) > 0).astype(np.int8).tocsr()
    return np.asarray(sp.csgraph.reverse_cuthill_mckee(sym,
                                                       symmetric_mode=True),
                      dtype=np.int64)


def bandwidth(M) -> int:
    """Maximum |i - j| over the nonzeros of a scipy sparse matrix."""
    coo = sp.coo_matrix(M)
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.row - coo.col).max())


def rcm_map(A: CrsMatrix) -> Map:
    """A row map assigning contiguous chunks of the RCM ordering to ranks.

    Row ``perm[k]`` becomes global row ``k``; rank r owns the k-range that
    a balanced contiguous map would give it.  Collective.
    """
    perm = reverse_cuthill_mckee(A)
    comm = A.row_map.comm
    n = A.num_global_rows
    base = Map.create_contiguous(n, comm)
    # rank owns the OLD gids whose NEW index falls in its contiguous block
    my_new = base.my_gids
    my_old = perm[my_new]
    return Map(n, my_old, comm, kind="arbitrary")


def permute_matrix(A: CrsMatrix) -> CrsMatrix:
    """P A P^T under the RCM permutation, as a new distributed matrix.

    Collective.  The result's global row/column k correspond to original
    index perm[k]; bandwidth (and ILU fill) typically drop substantially.
    """
    perm = reverse_cuthill_mckee(A)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm))
    comm = A.row_map.comm
    n = A.num_global_rows
    new_map = Map.create_contiguous(n, comm)
    out = CrsMatrix(new_map, dtype=A.dtype)
    # each rank contributes the rows it owns, renumbered; nonlocal rows
    # ship at fillComplete
    lm = A.local_matrix.tocoo()
    for i, j, v in zip(lm.row, lm.col, lm.data):
        old_row = int(A.row_map.my_gids[int(i)])
        old_col = int(A.col_map_gids[int(j)])
        out.insert_global_values(int(inv[old_row]), [int(inv[old_col])],
                                 [v])
    out.fillComplete()
    return out
