"""MatrixMarket I/O for distributed matrices and vectors.

Root-rank I/O: rank 0 reads/writes the file; data is scattered/gathered
through the map.  The coordinate format matches scipy.io.mmread/mmwrite
so files interoperate with the wider ecosystem.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.io as sio
import scipy.sparse as sp

from ..mpi import Intracomm
from ..tpetra import CrsMatrix, Map, Vector

__all__ = ["write_matrix_market", "read_matrix_market",
           "write_vector_market", "read_vector_market"]


def write_matrix_market(path: str, A: CrsMatrix) -> None:
    """Gather a distributed matrix to rank 0 and write it.  Collective."""
    A_global = A.to_scipy_global(root=0)
    if A.row_map.comm.rank == 0:
        sio.mmwrite(path, A_global)
    A.row_map.comm.barrier()


def read_matrix_market(path: str, comm: Intracomm,
                       row_map: Optional[Map] = None) -> CrsMatrix:
    """Read on rank 0, broadcast, distribute by *row_map*.  Collective."""
    if comm.rank == 0:
        M = sp.csr_matrix(sio.mmread(path))
        meta = (M.shape, M.nnz)
    else:
        M, meta = None, None
    shape, nnz = comm.bcast(meta, root=0)
    # CSR wire size is ~12 bytes/nonzero (float64 data + int32 indices);
    # the hint is SPMD-consistent because nnz itself was just broadcast
    M = comm.bcast(M, root=0, size_hint=12 * nnz + 8 * shape[0])
    if row_map is None:
        row_map = Map.create_contiguous(shape[0], comm)
    return CrsMatrix.from_scipy(M, row_map)


def write_vector_market(path: str, v: Vector) -> None:
    """Gather a distributed vector to rank 0 and write it.  Collective."""
    arr = v.gather(root=0)
    if v.comm.rank == 0:
        sio.mmwrite(path, arr)
    v.comm.barrier()


def read_vector_market(path: str, comm: Intracomm,
                       map_: Optional[Map] = None) -> Vector:
    """Read a dense MatrixMarket vector and distribute it.  Collective."""
    if comm.rank == 0:
        arr = np.asarray(sio.mmread(path)).reshape(-1)
        n = (len(arr), arr.dtype.itemsize)
    else:
        arr, n = None, None
    length, itemsize = comm.bcast(n, root=0)
    arr = comm.bcast(arr, root=0, size_hint=length * itemsize)
    if map_ is None:
        map_ = Map.create_contiguous(len(arr), comm)
    v = Vector(map_, dtype=arr.dtype)
    v.local_view[...] = arr[map_.my_gids]
    return v
