"""repro.triutils -- testing utilities and matrix I/O (TriUtils/EpetraExt).

Per Table I: "Testing utilities", plus the EpetraExt extensions the paper
lists ("I/O, sparse transposes, coloring, etc.").  Transposes live on
:class:`~repro.tpetra.crsmatrix.CrsMatrix`; this module adds MatrixMarket
read/write for distributed matrices and vectors, residual checking, and
greedy distance-1 matrix coloring.
"""

from .coloring import greedy_coloring
from .io import (read_matrix_market, read_vector_market, write_matrix_market,
                 write_vector_market)
from .ordering import (bandwidth, permute_matrix, rcm_map,
                       reverse_cuthill_mckee)
from .testing import residual_check, solution_error

__all__ = ["read_matrix_market", "write_matrix_market",
           "read_vector_market", "write_vector_market",
           "residual_check", "solution_error", "greedy_coloring",
           "reverse_cuthill_mckee", "rcm_map", "bandwidth",
           "permute_matrix"]
