"""Replayable conformance sweeps: ``python -m repro.chaos``.

Every run is a pure function of its flags -- the same command line
produces byte-identical output on consecutive runs (no timestamps, no
process-salted hashing), which is what makes the printed REPLAY lines
trustworthy.

Examples::

    # fixed-seed differential sweep, no faults
    python -m repro.chaos --seed 1234 --programs 50 --nranks 1,2,3,4

    # same programs under benign chaos (delay/slowdown/reorder):
    # results must still match the NumPy oracle exactly
    python -m repro.chaos --seed 1234 --programs 50 --nranks 2,4 --chaos benign

    # destructive faults: typed MPI errors accepted, wrong answers never
    python -m repro.chaos --seed 1234 --programs 20 --nranks 3 --chaos crash

    # fault recovery: the crash is detected, the worker pool shrinks,
    # state restores from partner checkpoints + op-log replay, and the
    # result must STILL match the oracle (needs nranks >= 2)
    python -m repro.chaos --seed 1234 --programs 20 --nranks 2,3,4 \
        --chaos crash --recover
"""

from __future__ import annotations

import argparse
import json
import sys

from .conformance import CHAOS_MODES, run_sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic differential conformance sweeps for the "
                    "ODIN runtime, optionally under injected faults.")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; program i uses seed+i (default 0)")
    parser.add_argument("--programs", type=int, default=20,
                        help="number of generated programs (default 20)")
    parser.add_argument("--nranks", default="1,2,3,4",
                        help="comma-separated worker counts (default 1,2,3,4)")
    parser.add_argument("--chaos", default="none", choices=CHAOS_MODES,
                        help="fault-plan template applied per program")
    parser.add_argument("--max-steps", type=int, default=10,
                        help="max steps per generated program (default 10)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="substrate deadlock timeout seconds (default 30)")
    parser.add_argument("--strict", action="store_true",
                        help="count typed MPI errors as failures even under "
                             "destructive chaos modes")
    parser.add_argument("--recover", action="store_true",
                        help="enable fault recovery (shrink + checkpoint/"
                             "replay): crashes must yield oracle-conformant "
                             "results instead of typed errors")
    parser.add_argument("--backend", default=None,
                        choices=("thread", "process"),
                        help="transport backend for the ODIN contexts "
                             "(default: REPRO_MPI_BACKEND or thread)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking failures to minimal programs")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many failures (default 5)")
    parser.add_argument("--repro-out", default=None, metavar="FILE",
                        help="write the first shrunk failure as JSON "
                             "(CI artifact)")
    args = parser.parse_args(argv)

    try:
        nranks_list = [int(x) for x in args.nranks.split(",") if x.strip()]
    except ValueError:
        parser.error(f"--nranks must be comma-separated ints, "
                     f"got {args.nranks!r}")
    if not nranks_list or any(n < 1 for n in nranks_list):
        parser.error("--nranks needs at least one positive worker count")

    if args.recover and any(n < 2 for n in nranks_list):
        parser.error("--recover needs every --nranks >= 2: a sole "
                     "worker's crash leaves no survivors to recover onto")

    print(f"chaos conformance sweep: seed={args.seed} "
          f"programs={args.programs} nranks={nranks_list} "
          f"chaos={args.chaos}"
          f"{' strict' if args.strict else ''}"
          f"{' recover' if args.recover else ''}"
          f"{f' backend={args.backend}' if args.backend else ''}")

    failures = run_sweep(args.seed, args.programs, nranks_list,
                         chaos_mode=args.chaos, max_steps=args.max_steps,
                         timeout=args.timeout, strict=args.strict,
                         shrink=not args.no_shrink,
                         max_failures=args.max_failures,
                         log=print, recover=args.recover,
                         backend=args.backend)

    checked = args.programs * len(nranks_list)
    if failures:
        print(f"RESULT: {len(failures)} failure(s) out of {checked} "
              f"program-runs")
        if args.repro_out:
            doc = failures[0].to_dict()
            # attach the crash flight recorder: the rings cover the
            # post-shrink replay of the minimal program, and last_fault
            # carries the causal op_id + per-rank pending snapshot taken
            # at the moment the injected fault fired
            from ..obs.flight import FLIGHT
            flight_path = None
            if FLIGHT.enabled:
                try:
                    flight_path = FLIGHT.dump(args.repro_out
                                              + ".flight.json")
                except OSError:
                    flight_path = None
            doc["flight_dump"] = flight_path
            doc["last_fault"] = FLIGHT.last_fault
            with open(args.repro_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True, default=str)
            print(f"shrunk repro written to {args.repro_out}")
            if flight_path:
                print(f"flight recorder dump written to {flight_path}")
        return 1
    print(f"RESULT: OK ({checked} program-runs conformant)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
