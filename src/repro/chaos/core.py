"""Deterministic fault injection for the MPI substrate.

A :class:`FaultPlan` is a seed plus an ordered list of declarative
:class:`FaultRule`\\ s.  The runtime consults the process-wide
:data:`ENGINE` at its injection points (``runtime.py`` sends/receives,
``comm.py`` collectives, ``rma.py`` one-sided ops); when no plan is
installed every site costs a single ``if ENGINE.enabled`` predicate,
mirroring ``repro.trace`` / ``repro.metrics``.

Determinism contract
--------------------
Whether a rule fires for a given operation depends only on
``(plan.seed, rule index, rank, rank-local step number)``, mixed through
a splitmix64-style integer hash -- never on wall-clock time, thread
interleaving, or Python's per-process ``hash()`` salt.  Each rank's
operation sequence is fixed by SPMD program order, so the same plan
against the same program injects the *same* fault schedule on every run:
``python -m repro.chaos --seed N ...`` replays bit-identically.

Fault model (all bounded -- nothing ever hangs):

- ``delay``    sleep before a matching operation (late-sender shapes);
- ``slowdown`` rank-wide sleep on every matching operation;
- ``reorder``  deliver a message ahead of up to *depth* queued messages,
  but never overtaking same-``(src, ctx)`` traffic (the non-overtaking
  rule MPI guarantees is preserved);
- ``truncate`` drop the tail of an outgoing payload -- surfaces at the
  receiver as a typed :class:`~repro.mpi.errors.TruncationError`;
- ``crash``    raise :class:`~repro.mpi.errors.InjectedFault` in the
  matching rank once its step counter reaches ``after`` -- peers observe
  the usual :class:`~repro.mpi.errors.AbortError` via world abort.

Sleeps are capped at ``FaultPlan.max_sleep`` seconds so injected latency
stays far below the runtime's deadlock timeout.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FaultRule", "FaultPlan", "ChaosEngine", "ENGINE",
           "install", "uninstall", "active_plan"]

_MASK = (1 << 64) - 1

#: operation classes a rule may match (``op=None`` matches any of them)
OPS = ("send", "recv", "coll", "rma")


def _mix(*parts: int) -> int:
    """splitmix64-style avalanche over a tuple of ints (order-sensitive).

    Used instead of ``hash()`` because CPython salts ``hash`` per process
    (PYTHONHASHSEED), which would destroy cross-run replayability.
    """
    x = 0x9E3779B97F4A7C15
    for p in parts:
        x = (x ^ (p & _MASK)) & _MASK
        x = (x * 0xBF58476D1CE4E5B9) & _MASK
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & _MASK
        x ^= x >> 31
    return x


def _unit(*parts: int) -> float:
    """Deterministic uniform draw in [0, 1) from integer inputs."""
    return _mix(*parts) / float(1 << 64)


class FaultRule:
    """One declarative injection rule.  Matching is AND over the set
    fields; ``None`` means "any"."""

    __slots__ = ("kind", "op", "rank", "peer", "prob", "seconds", "keep",
                 "after", "depth")

    def __init__(self, kind: str, op: Optional[str] = None,
                 rank: Optional[int] = None, peer: Optional[int] = None,
                 prob: float = 1.0, seconds: float = 0.0,
                 keep: float = 0.5, after: int = 0, depth: int = 1):
        if kind not in ("delay", "slowdown", "truncate", "crash", "reorder"):
            raise ValueError(f"unknown fault kind {kind!r}")
        if op is not None and op not in OPS:
            raise ValueError(f"unknown op class {op!r}; expected one of {OPS}")
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        if not 0.0 <= keep < 1.0:
            raise ValueError("keep must be in [0, 1): truncation must "
                             "actually drop bytes")
        self.kind = kind
        self.op = op
        self.rank = rank
        self.peer = peer
        self.prob = float(prob)
        self.seconds = float(seconds)
        self.keep = float(keep)
        self.after = int(after)
        self.depth = int(depth)

    def matches(self, op: str, rank: int, peer: Optional[int]) -> bool:
        if self.op is not None and self.op != op:
            return False
        if self.rank is not None and self.rank != rank:
            return False
        if self.peer is not None and self.peer != peer:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {s: getattr(self, s) for s in self.__slots__}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultRule":
        return cls(**d)

    def __repr__(self):
        parts = [repr(self.kind)]
        for s in self.__slots__[1:]:
            v = getattr(self, s)
            default = FaultRule.__init__.__defaults__[
                list(self.__slots__[1:]).index(s)]
            if v != default:
                parts.append(f"{s}={v!r}")
        return f"FaultRule({', '.join(parts)})"


class FaultPlan:
    """A seed plus an ordered rule list; builder methods chain.

    >>> plan = (FaultPlan(seed=42)
    ...         .delay(rank=1, op="send", prob=0.3, seconds=0.01)
    ...         .crash(rank=2, after=10))
    """

    def __init__(self, seed: int = 0, rules: Tuple[FaultRule, ...] = (),
                 max_sleep: float = 2.0):
        self.seed = int(seed)
        self.rules: List[FaultRule] = list(rules)
        self.max_sleep = float(max_sleep)

    # -- builders -----------------------------------------------------------
    def _add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def delay(self, seconds: float, op: Optional[str] = "send",
              rank: Optional[int] = None, peer: Optional[int] = None,
              prob: float = 1.0) -> "FaultPlan":
        """Sleep *seconds* before matching operations (late-sender)."""
        return self._add(FaultRule("delay", op=op, rank=rank, peer=peer,
                                   prob=prob, seconds=seconds))

    def slowdown(self, seconds: float, rank: Optional[int] = None,
                 prob: float = 1.0) -> "FaultPlan":
        """Rank-wide slowdown: sleep before *every* matching operation."""
        return self._add(FaultRule("slowdown", rank=rank, prob=prob,
                                   seconds=seconds))

    def truncate(self, keep: float = 0.5, op: Optional[str] = "send",
                 rank: Optional[int] = None, peer: Optional[int] = None,
                 prob: float = 1.0) -> "FaultPlan":
        """Drop the tail of outgoing payloads, keeping *keep* fraction."""
        return self._add(FaultRule("truncate", op=op, rank=rank, peer=peer,
                                   prob=prob, keep=keep))

    def crash(self, rank: int, after: int = 0) -> "FaultPlan":
        """Raise :class:`InjectedFault` in *rank* once its rank-local
        operation counter reaches *after* (fires exactly once)."""
        return self._add(FaultRule("crash", rank=rank, after=after))

    def reorder(self, depth: int = 2, rank: Optional[int] = None,
                peer: Optional[int] = None,
                prob: float = 1.0) -> "FaultPlan":
        """Deliver matching sends ahead of up to *depth* queued messages
        from *other* (src, ctx) streams -- MPI-legal reordering only."""
        return self._add(FaultRule("reorder", op="send", rank=rank,
                                   peer=peer, prob=prob, depth=depth))

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "max_sleep": self.max_sleep,
                "rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        return cls(seed=d.get("seed", 0),
                   rules=tuple(FaultRule.from_dict(r)
                               for r in d.get("rules", ())),
                   max_sleep=d.get("max_sleep", 2.0))

    def __repr__(self):
        return (f"FaultPlan(seed={self.seed}, "
                f"rules=[{', '.join(map(repr, self.rules))}])")


class ChaosEngine:
    """Process-wide injection engine; one predicate when disabled.

    Hot sites check ``ENGINE.enabled`` (a plain attribute) and only then
    call into the decision machinery.  Counters and the injected-event
    log are guarded by one lock -- acceptable because the enabled path is
    for tests, not production measurement.
    """

    __slots__ = ("enabled", "_plan", "_lock", "_steps", "_fired", "_log")

    def __init__(self):
        self.enabled = False
        self._plan: Optional[FaultPlan] = None
        self._lock = threading.Lock()
        self._steps: Dict[int, int] = {}    # rank -> ops seen so far
        self._fired: set = set()            # (rule_idx, rank) crash latches
        self._log: List[Dict[str, Any]] = []

    # -- lifecycle ----------------------------------------------------------
    def install(self, plan: FaultPlan) -> None:
        with self._lock:
            self._plan = plan
            self._steps = {}
            self._fired = set()
            self._log = []
        self.enabled = True

    def uninstall(self) -> None:
        self.enabled = False
        with self._lock:
            self._plan = None

    def active_plan(self) -> Optional[FaultPlan]:
        return self._plan

    def injected(self) -> List[Dict[str, Any]]:
        """Copy of the injected-event log (chronological per rank)."""
        with self._lock:
            return list(self._log)

    # -- decision machinery -------------------------------------------------
    def _next_step(self, rank: int) -> int:
        with self._lock:
            step = self._steps.get(rank, 0)
            self._steps[rank] = step + 1
        return step

    def _record(self, kind: str, rank: int, op: str, step: int,
                **detail: Any) -> None:
        event = {"kind": kind, "rank": rank, "op": op, "step": step}
        event.update(detail)
        with self._lock:
            self._log.append(event)
        # lazy imports: chaos.core must not import repro.* at module
        # level (runtime.py imports us during package init)
        from ..metrics import REGISTRY as _MX
        from ..trace import TRACER as _TR
        if _MX.enabled:
            _MX.inc("chaos.injected", kind=kind, op=op)
        if _TR.enabled and kind not in ("delay", "slowdown"):
            _TR.instant("chaos", kind, rank=rank, op=op, step=step, **detail)

    def _sleep(self, kind: str, rank: int, op: str, step: int,
               seconds: float) -> None:
        seconds = min(seconds, self._plan.max_sleep if self._plan else 2.0)
        from ..trace import TRACER as _TR
        if _TR.enabled:
            # a span covering the sleep, so the injected latency is
            # visible to the analyzer's critical-path walk
            t0 = _TR.now()
            time.sleep(seconds)
            _TR.complete("chaos", kind, t0, rank=rank, op=op, step=step,
                         seconds=seconds)
        else:
            time.sleep(seconds)
        self._record(kind, rank, op, step, seconds=seconds)

    def _crash(self, rule: FaultRule, rank: int, op: str,
               step: int) -> None:
        self._record("crash", rank, op, step, after=rule.after)
        from ..mpi.errors import InjectedFault
        from ..obs.flight import FLIGHT
        FLIGHT.notify_fault("InjectedFault",
                            f"rank {rank} at step {step} ({op}): {rule!r}")
        raise InjectedFault(rank, step, repr(rule))

    def on_op(self, op: str, rank: int, peer: Optional[int] = None) -> int:
        """Consult the plan at a non-send site (recv / coll / rma entry).

        Raises :class:`InjectedFault` for crash rules; sleeps for
        delay/slowdown rules.  Returns the rank-local step number.
        """
        plan = self._plan
        if plan is None:
            return -1
        step = self._next_step(rank)
        for idx, rule in enumerate(plan.rules):
            if not rule.matches(op, rank, peer):
                continue
            if rule.kind == "crash":
                key = (idx, rank)
                if step >= rule.after and key not in self._fired:
                    self._fired.add(key)
                    self._crash(rule, rank, op, step)
            elif rule.kind in ("delay", "slowdown"):
                if _unit(plan.seed, idx, rank, step) < rule.prob:
                    self._sleep(rule.kind, rank, op, step, rule.seconds)
        return step

    def on_send(self, rank: int, dest: int, kind: str, payload: Any,
                nbytes: int) -> Tuple[Any, int, int]:
        """Consult the plan at a send site.

        Returns ``(payload, nbytes, jump)``: possibly truncated payload
        and byte count, plus a reorder *jump* (how many queued messages
        from other streams this one may overtake; 0 = in order).
        """
        plan = self._plan
        if plan is None:
            return payload, nbytes, 0
        step = self._next_step(rank)
        jump = 0
        for idx, rule in enumerate(plan.rules):
            if not rule.matches("send", rank, dest):
                continue
            if rule.kind == "crash":
                key = (idx, rank)
                if step >= rule.after and key not in self._fired:
                    self._fired.add(key)
                    self._crash(rule, rank, "send", step)
            elif rule.kind in ("delay", "slowdown"):
                if _unit(plan.seed, idx, rank, step) < rule.prob:
                    self._sleep(rule.kind, rank, "send", step, rule.seconds)
            elif rule.kind == "truncate":
                if _unit(plan.seed, idx, rank, step) < rule.prob:
                    payload, nbytes = self._truncate(
                        rule, rank, dest, step, kind, payload, nbytes)
            elif rule.kind == "reorder":
                if _unit(plan.seed, idx, rank, step) < rule.prob:
                    jump = max(jump, rule.depth)
                    self._record("reorder", rank, "send", step, dest=dest,
                                 depth=rule.depth)
        return payload, nbytes, jump

    def _truncate(self, rule: FaultRule, rank: int, dest: int, step: int,
                  kind: str, payload: Any, nbytes: int):
        if kind == "buffer":
            n = payload.size
            keep_n = min(int(n * rule.keep), max(n - 1, 0))
            payload = payload[:keep_n].copy()
            new_nbytes = payload.nbytes
        elif kind == "pickle5":
            # out-of-band payload: (blob, frames).  The frames are the
            # shared read-only isolation copies, so truncation must not
            # mutate them in place -- drop the tail of the last frame by
            # re-slicing (a fresh copy), or the blob when frame-less.
            blob, frames = payload
            if frames:
                last = frames[-1]
                n = last.nbytes
                keep_n = min(int(n * rule.keep), max(n - 1, 0))
                cut = last[:keep_n].copy()
                cut.flags.writeable = False
                frames = list(frames[:-1]) + [cut]
            else:
                n = len(blob)
                keep_n = min(int(n * rule.keep), max(n - 1, 0))
                blob = blob[:keep_n]
            payload = (blob, frames)
            new_nbytes = len(blob) + sum(f.nbytes for f in frames)
        else:  # pickle blob
            n = len(payload)
            keep_n = min(int(n * rule.keep), max(n - 1, 0))
            payload = payload[:keep_n]
            new_nbytes = keep_n
        self._record("truncate", rank, "send", step, dest=dest,
                     nbytes_before=nbytes, nbytes_after=new_nbytes)
        return payload, new_nbytes


#: the process-wide engine consulted by the MPI substrate
ENGINE = ChaosEngine()


def install(plan: FaultPlan) -> None:
    """Install *plan* as the active fault plan (enables injection)."""
    ENGINE.install(plan)


def uninstall() -> None:
    """Remove the active plan (injection sites return to one predicate)."""
    ENGINE.uninstall()


def active_plan() -> Optional[FaultPlan]:
    return ENGINE.active_plan()
