"""Deterministic fault injection + differential conformance (``repro.chaos``).

Two halves:

- :mod:`repro.chaos.core` -- a seeded, declarative :class:`FaultPlan`
  consulted by the MPI substrate at its injection points (p2p sends and
  receives, collectives, RMA).  Disabled cost is one predicate per site,
  the same contract as :mod:`repro.trace` and :mod:`repro.metrics`.
- :mod:`repro.chaos.conformance` -- a property-based harness: random
  ODIN programs executed distributed across an nranks sweep and checked
  against a single-process NumPy oracle, with automatic shrinking of
  failures to a minimal repro and a printed ``--seed`` replay line
  (``python -m repro.chaos --seed N ...``).

This ``__init__`` stays import-light: the MPI runtime imports
:data:`ENGINE` during package init, so the conformance half (which pulls
in ODIN and would recurse into :mod:`repro.mpi`) loads lazily on first
attribute access.
"""

from .core import (ENGINE, ChaosEngine, FaultPlan, FaultRule, active_plan,
                   install, uninstall)

__all__ = [
    "ENGINE", "ChaosEngine", "FaultPlan", "FaultRule",
    "install", "uninstall", "active_plan",
    # lazily resolved from .conformance:
    "Program", "generate_program", "run_numpy", "run_distributed",
    "check_program", "shrink_program", "run_sweep", "ConformanceFailure",
]

_CONFORMANCE_NAMES = frozenset(__all__[7:])


def __getattr__(name):
    if name in _CONFORMANCE_NAMES or name == "conformance":
        # importlib, not ``from . import``: the latter re-enters this
        # __getattr__ via hasattr() and recurses
        import importlib
        conformance = importlib.import_module(".conformance", __name__)
        if name == "conformance":
            return conformance
        return getattr(conformance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
