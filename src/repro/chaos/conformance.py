"""Property-based differential conformance for the ODIN runtime.

Random programs over the distributed-array API -- sources in several
dtypes and distributions (block / cyclic / block-cyclic), ufunc chains,
slicing with halo patterns, reductions, redistribution, tabular
map-reduce -- are executed two ways and compared step by step:

- the **oracle**: plain single-process NumPy;
- the **subject**: ODIN driver + workers over the MPI substrate, across
  a sweep of worker counts, optionally under an installed
  :class:`~repro.chaos.core.FaultPlan`.

Elementwise results, slices, redistributions and min/max reductions must
match **element-exact**; floating sum/mean reductions (whose operation
order legitimately differs between a distributed fold and NumPy's
pairwise summation) must match within an ULP bound proportional to the
number of additions.  Under *benign* faults (delay, slowdown, MPI-legal
reordering) results must still match exactly; under destructive faults
(crash, truncation) a typed :class:`~repro.mpi.errors.MPIError` is the
accepted outcome -- a silently wrong result is always a failure.

Failures shrink automatically (drop steps with their dependents, shrink
source shapes, halve map-reduce row counts) to a minimal program that
still fails, and every failure prints a ``--seed`` line that replays it
bit-identically via ``python -m repro.chaos``.

Programs are plain data (lists of steps, JSON round-trippable), so a
shrunk repro can be stored as a CI artifact and replayed from its seed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core import FaultPlan, _mix

__all__ = ["Program", "generate_program", "run_numpy", "run_distributed",
           "check_program", "shrink_program", "run_sweep",
           "ConformanceFailure", "plan_for_mode", "CHAOS_MODES"]

# step-kind safe operation sets: every op here is warning-free on the
# generated data ranges (positive floats in [0.5, 2), ints in [1, 9)),
# and element-exact between NumPy and a distributed evaluation
_UNARY = {
    "float": ("negative", "absolute", "square", "tanh", "sin", "cos",
              "floor", "ceil", "rint", "sign"),
    "int": ("negative", "absolute", "square", "sign"),
    "bool": ("logical_not",),
}
_BINARY = {
    "float": ("add", "subtract", "multiply", "maximum", "minimum", "hypot"),
    "int": ("add", "subtract", "multiply", "maximum", "minimum"),
    "bool": ("logical_and", "logical_or", "logical_xor"),
}
_COMPARE = ("less", "greater", "less_equal", "greater_equal",
            "equal", "not_equal")
_REDUCE = {"float": ("sum", "min", "max", "mean"),
           "int": ("sum", "min", "max"),
           "bool": ("sum",)}
_TABLE_OPS = ("sum", "count", "mean", "min", "max")
_DTYPES = ("float64", "float32", "int64")
_DIST_KINDS = ("block", "cyclic", "block-cyclic")


class Program:
    """A generated conformance program: an ordered list of steps.

    Steps are JSON-able lists; each produces one value referred to by
    its index.  Kinds::

        ["source", shape, dtype, [dist_kind, axis, block_size], dseed]
        ["unary", src, fname]
        ["binary", a, b, fname]        # includes comparisons
        ["slice", src, [[start, stop], ...]]
        ["reduce", src, op, axis]      # axis None -> scalar
        ["redistribute", src, [dist_kind, axis, block_size]]
        ["mapreduce", nrows, op, dseed]
    """

    def __init__(self, seed: int, steps: Sequence[list]):
        self.seed = int(seed)
        self.steps = [list(s) for s in steps]

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "steps": self.steps}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Program":
        return cls(d["seed"], d["steps"])

    def describe(self) -> str:
        lines = []
        for i, s in enumerate(self.steps):
            kind = s[0]
            if kind == "source":
                _, shape, dtype, dist, dseed = s
                lines.append(f"v{i} = source(shape={tuple(shape)}, "
                             f"dtype={dtype}, dist={_dist_str(dist)}, "
                             f"dseed={dseed})")
            elif kind == "unary":
                lines.append(f"v{i} = {s[2]}(v{s[1]})")
            elif kind == "binary":
                lines.append(f"v{i} = {s[3]}(v{s[1]}, v{s[2]})")
            elif kind == "slice":
                sl = ", ".join(f"{a}:{b}" for a, b in s[2])
                lines.append(f"v{i} = v{s[1]}[{sl}]")
            elif kind == "reduce":
                lines.append(f"v{i} = v{s[1]}.{s[2]}(axis={s[3]})")
            elif kind == "redistribute":
                lines.append(f"v{i} = v{s[1]}.redistribute"
                             f"({_dist_str(s[2])})")
            elif kind == "mapreduce":
                lines.append(f"v{i} = mapreduce(nrows={s[1]}, op={s[2]!r}, "
                             f"dseed={s[3]})")
            else:
                lines.append(f"v{i} = <unknown {kind!r}>")
        return "\n".join(lines)

    def __repr__(self):
        return f"Program(seed={self.seed}, steps={len(self.steps)})"


def _dist_str(spec) -> str:
    kind, axis, bs = spec
    extra = f", block_size={bs}" if kind == "block-cyclic" else ""
    return f"{kind}(axis={axis}{extra})"


def _source_data(shape, dtype, dseed) -> np.ndarray:
    """Deterministic per-source payload: positive floats in [0.5, 2) or
    small positive ints, so the safe op sets stay warning-free."""
    rng = np.random.default_rng(np.uint64(dseed))
    if dtype == "int64":
        return rng.integers(1, 9, size=tuple(shape), dtype=np.int64)
    return rng.uniform(0.5, 2.0, size=tuple(shape)).astype(dtype)


def _table_data(nrows, dseed) -> np.ndarray:
    rng = np.random.default_rng(np.uint64(dseed))
    rec = np.zeros(nrows, dtype=[("key", np.int64), ("value", np.float64)])
    rec["key"] = rng.integers(0, 5, size=nrows)
    rec["value"] = rng.uniform(0.5, 2.0, size=nrows)
    return rec


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def generate_program(seed: int, max_steps: int = 10) -> Program:
    """Deterministically generate a random valid program from *seed*."""
    rng = np.random.default_rng(np.uint64(seed))
    steps: List[list] = []
    metas: List[tuple] = []  # ("array", shape, cls) | ("scalar",) | ("table",)
    # Steps whose values carry distributed-fold rounding (float sum/mean
    # axis reductions).  They are observed and ULP-compared, but never fed
    # into later steps: elementwise chains can amplify a 1-ulp difference
    # without bound (cancellation), which no fixed tolerance survives.
    tainted: set = set()

    def arrays(pred: Callable[[tuple], bool] = None) -> List[int]:
        return [i for i, m in enumerate(metas)
                if m[0] == "array" and i not in tainted
                and (pred is None or pred(m))]

    def pick(idx_list: List[int]) -> int:
        return int(idx_list[rng.integers(0, len(idx_list))])

    def rand_dist(shape) -> list:
        kind = str(rng.choice(_DIST_KINDS))
        axis = int(rng.integers(0, len(shape)))
        bs = int(rng.integers(1, 4)) if kind == "block-cyclic" else 0
        return [kind, axis, bs]

    def add_source() -> None:
        nd = 1 if rng.random() < 0.7 else 2
        if nd == 1:
            shape = (int(rng.integers(5, 25)),)
        else:
            shape = (int(rng.integers(3, 9)), int(rng.integers(3, 9)))
        dtype = str(rng.choice(_DTYPES))
        cls = "int" if dtype == "int64" else "float"
        dseed = int(rng.integers(0, 2 ** 31))
        steps.append(["source", list(shape), dtype, rand_dist(shape), dseed])
        metas.append(("array", shape, cls))

    def add_unary() -> None:
        i = pick(arrays())
        _, shape, cls = metas[i]
        fname = str(rng.choice(_UNARY[cls]))
        steps.append(["unary", i, fname])
        metas.append(("array", shape, cls))

    def add_binary() -> None:
        cands = arrays()
        i = pick(cands)
        _, shape, cls = metas[i]
        mates = [j for j in cands
                 if metas[j][1] == shape and metas[j][2] == cls]
        if not mates:
            return add_unary()
        j = pick(mates)
        fname = str(rng.choice(_BINARY[cls]))
        steps.append(["binary", i, j, fname])
        metas.append(("array", shape, cls))

    def add_compare() -> None:
        cands = arrays(lambda m: m[2] in ("float", "int"))
        if not cands:
            return add_unary()
        i = pick(cands)
        _, shape, cls = metas[i]
        mates = [j for j in cands
                 if metas[j][1] == shape and metas[j][2] == cls]
        if not mates:
            return add_unary()
        j = pick(mates)
        fname = str(rng.choice(_COMPARE))
        steps.append(["binary", i, j, fname])
        metas.append(("array", shape, "bool"))

    def add_slice() -> None:
        cands = arrays(lambda m: max(m[1]) >= 3)
        if not cands:
            return add_unary()
        i = pick(cands)
        _, shape, cls = metas[i]
        spec, out_shape = [], []
        for n in shape:
            lo = int(rng.integers(0, min(3, n)))
            hi = n - int(rng.integers(0, min(3, n - lo)))
            spec.append([lo, hi])
            out_shape.append(hi - lo)
        steps.append(["slice", i, spec])
        metas.append(("array", tuple(out_shape), cls))

    def add_halo() -> None:
        cands = arrays(lambda m: len(m[1]) == 1 and m[1][0] >= 4
                       and m[2] in ("float", "int"))
        if not cands:
            return add_slice()
        i = pick(cands)
        _, (n,), cls = metas[i]
        steps.append(["slice", i, [[1, n]]])
        metas.append(("array", (n - 1,), cls))
        steps.append(["slice", i, [[0, n - 1]]])
        metas.append(("array", (n - 1,), cls))
        fname = "subtract" if cls != "bool" else "logical_xor"
        steps.append(["binary", len(steps) - 2, len(steps) - 1, fname])
        metas.append(("array", (n - 1,), cls))

    def add_reduce() -> None:
        i = pick(arrays())
        _, shape, cls = metas[i]
        op = str(rng.choice(_REDUCE[cls]))
        if len(shape) == 2 and rng.random() < 0.5:
            axis = int(rng.integers(0, 2))
            out = tuple(s for a, s in enumerate(shape) if a != axis)
            steps.append(["reduce", i, op, axis])
            metas.append(("array", out,
                          "float" if op == "mean" else cls))
            if op == "mean" or (op == "sum" and cls == "float"):
                tainted.add(len(steps) - 1)
        else:
            steps.append(["reduce", i, op, None])
            metas.append(("scalar",))

    def add_redistribute() -> None:
        i = pick(arrays())
        _, shape, cls = metas[i]
        steps.append(["redistribute", i, rand_dist(shape)])
        metas.append(("array", shape, cls))

    def add_mapreduce() -> None:
        nrows = int(rng.integers(8, 41))
        op = str(rng.choice(_TABLE_OPS))
        dseed = int(rng.integers(0, 2 ** 31))
        steps.append(["mapreduce", nrows, op, dseed])
        metas.append(("table",))

    add_source()
    n_target = int(rng.integers(3, max(4, max_steps + 1)))
    makers = {"source": add_source, "unary": add_unary,
              "binary": add_binary, "compare": add_compare,
              "slice": add_slice, "halo": add_halo, "reduce": add_reduce,
              "redistribute": add_redistribute, "mapreduce": add_mapreduce}
    kinds = list(makers)
    probs = np.array([0.12, 0.16, 0.16, 0.08, 0.12, 0.08, 0.12, 0.11, 0.05])
    while len(steps) < n_target:
        makers[str(rng.choice(kinds, p=probs))]()
    return Program(seed, steps)


# ----------------------------------------------------------------------
# execution: NumPy oracle and distributed subject
# ----------------------------------------------------------------------
def _np_mapreduce(nrows, op, dseed) -> Tuple[np.ndarray, np.ndarray]:
    rec = _table_data(nrows, dseed)
    keys = np.unique(rec["key"])
    fold = {"sum": np.sum, "mean": np.mean, "min": np.min, "max": np.max,
            "count": len}
    vals = np.array([fold[op](rec["value"][rec["key"] == k]) for k in keys],
                    dtype=np.float64)
    return keys, vals


def run_numpy(program: Program) -> List[Any]:
    """Single-process oracle: evaluate every step with plain NumPy."""
    vals: List[Any] = []
    obs: List[Any] = []
    for s in program.steps:
        kind = s[0]
        if kind == "source":
            v = _source_data(s[1], s[2], s[4])
        elif kind == "unary":
            v = getattr(np, s[2])(vals[s[1]])
        elif kind == "binary":
            v = getattr(np, s[3])(vals[s[1]], vals[s[2]])
        elif kind == "slice":
            v = vals[s[1]][tuple(slice(a, b) for a, b in s[2])]
        elif kind == "reduce":
            arr, op, axis = vals[s[1]], s[2], s[3]
            v = getattr(np, op if op != "mean" else "mean")(arr, axis=axis)
        elif kind == "redistribute":
            v = vals[s[1]]
        elif kind == "mapreduce":
            v = _np_mapreduce(s[1], s[2], s[3])
        else:
            raise ValueError(f"unknown step kind {kind!r}")
        vals.append(v)
        obs.append(v)
    return obs


def _odin_dist(spec, shape, nworkers):
    from ..odin.distribution import make_distribution
    kind, axis, bs = spec
    kwargs = {"block_size": bs} if kind == "block-cyclic" else {}
    return make_distribution(tuple(shape), nworkers, dist=kind, axis=axis,
                             **kwargs)


def _run_odin(program: Program, ctx) -> List[Any]:
    import repro.odin as odin
    from ..odin import tabular

    vals: List[Any] = []
    obs: List[Any] = []
    for s in program.steps:
        kind = s[0]
        if kind == "source":
            data = _source_data(s[1], s[2], s[4])
            dk, axis, bs = s[3]
            kwargs = {"block_size": bs} if dk == "block-cyclic" else {}
            v = odin.array(data, dist=dk, axis=axis, ctx=ctx, **kwargs)
        elif kind == "unary":
            v = getattr(odin, s[2])(vals[s[1]])
        elif kind == "binary":
            v = getattr(odin, s[3])(vals[s[1]], vals[s[2]])
        elif kind == "slice":
            v = vals[s[1]][tuple(slice(a, b) for a, b in s[2])]
        elif kind == "reduce":
            v = getattr(vals[s[1]], s[2])(axis=s[3])
            # reducing along the distributed axis collapses to a local
            # ndarray; re-scatter it so downstream steps (redistribute,
            # ufuncs) keep operating on a DistArray like the generator
            # assumes
            if isinstance(v, np.ndarray) and v.ndim > 0:
                v = odin.array(v, ctx=ctx)
        elif kind == "redistribute":
            src = vals[s[1]]
            v = src.redistribute(_odin_dist(s[2], src.shape, ctx.nworkers))
        elif kind == "mapreduce":
            rec = tabular.from_records(_table_data(s[1], s[3]), ctx=ctx)
            v = tabular.group_aggregate(rec, "key", "value", op=s[2])
        else:
            raise ValueError(f"unknown step kind {kind!r}")
        vals.append(v)
        # observe immediately: gather to the driver
        if kind == "mapreduce":
            table = v.gather()
            order = np.argsort(table["key"], kind="stable")
            obs.append((table["key"][order].astype(np.int64),
                        table["value"][order].astype(np.float64)))
        elif hasattr(v, "gather"):
            obs.append(v.gather())
        else:
            obs.append(v)
    return obs


def run_distributed(program: Program, nworkers: int,
                    fault_plan: Optional[FaultPlan] = None,
                    timeout: float = 30.0,
                    recover: bool = False,
                    backend: Optional[str] = None) -> List[Any]:
    """Run *program* on a fresh ODIN context with *nworkers* workers,
    optionally under *fault_plan*.  Always tears the context down, even
    after a crash-aborted world.

    With *recover*, the context runs with checkpoint/replay recovery
    enabled: an injected crash shrinks the worker pool and the program is
    expected to complete with oracle-conformant results anyway.

    *backend* selects the transport ("thread"/"process", default from
    ``REPRO_MPI_BACKEND``); chaos plans are installed through the context
    so process-backend workers arm their own engines.
    """
    from ..odin.context import OdinContext

    ctx = OdinContext(nworkers, timeout=timeout, recover=recover,
                      backend=backend)
    try:
        if fault_plan is not None:
            ctx.install_chaos(fault_plan)
        try:
            return _run_odin(program, ctx)
        finally:
            if fault_plan is not None:
                ctx.uninstall_chaos()
    finally:
        try:
            ctx.shutdown()
        except Exception:
            # the world may already be abort-poisoned (crash faults)
            pass


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _ulp_close(a, b, ulps: float) -> bool:
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    # compare at the *lowest* precision present: the driver returns
    # Python floats (float64) even for float32 arrays, and a distributed
    # float32 fold may differ from NumPy's by ulps *of float32*
    dts = [x.dtype for x in (a, b) if x.dtype.kind == "f"]
    dt = min(dts, key=lambda d: d.itemsize) if dts else np.dtype(np.float64)
    af, bf = a.astype(dt), b.astype(dt)
    if np.array_equal(af, bf, equal_nan=True):
        return True
    with np.errstate(invalid="ignore", over="ignore"):
        tol = ulps * np.spacing(np.maximum(np.abs(af), np.abs(bf)))
        ok = (af == bf) | (np.abs(af - bf) <= tol) \
            | (np.isnan(af) & np.isnan(bf))
    return bool(np.all(ok))


def _step_tolerance(program: Program, i: int) -> Optional[float]:
    """ULP budget for step *i*'s comparison, or None for element-exact.

    Only floating sum/mean reductions may differ between a distributed
    fold and the NumPy oracle (operation order); everything else --
    elementwise chains, slices, redistributions, min/max, integer and
    boolean reductions (modular addition is associative) -- is exact.
    """
    s = program.steps[i]
    if s[0] == "reduce" and s[2] in ("sum", "mean"):
        src = program.steps[s[1]]
        while src[0] in ("unary", "binary", "slice", "redistribute"):
            src = program.steps[src[1]]
        if src[0] == "source" and src[2] == "int64" and s[2] == "sum":
            return None  # integer folds are exact under wraparound
        n = int(np.prod(_shape_of(program, s[1])))
        return 8.0 * max(4, n)
    if s[0] == "mapreduce" and s[2] in ("sum", "mean"):
        return 8.0 * max(4, s[1])
    return None


def _shape_of(program: Program, i: int) -> Tuple[int, ...]:
    """Static shape of step *i* (mirrors the generator's tracking)."""
    s = program.steps[i]
    kind = s[0]
    if kind == "source":
        return tuple(s[1])
    if kind in ("unary", "redistribute"):
        return _shape_of(program, s[1])
    if kind == "binary":
        return _shape_of(program, s[1])
    if kind == "slice":
        return tuple(b - a for a, b in s[2])
    if kind == "reduce":
        shape, axis = _shape_of(program, s[1]), s[3]
        if axis is None:
            return ()
        return tuple(n for a, n in enumerate(shape) if a != axis)
    return ()


def compare_observations(program: Program, oracle: List[Any],
                         subject: List[Any]) -> Optional[str]:
    """None if conformant, else a description of the first divergence."""
    for i, (want, got) in enumerate(zip(oracle, subject)):
        step = program.steps[i]
        if step[0] == "mapreduce":
            wk, wv = want
            gk, gv = got
            if not np.array_equal(wk, gk):
                return (f"step {i} ({step[0]}): key sets differ: "
                        f"{wk!r} vs {gk!r}")
            tol = _step_tolerance(program, i)
            ok = (_ulp_close(wv, gv, tol) if tol is not None
                  else np.array_equal(wv, gv))
            if not ok:
                return (f"step {i} ({step[0]}): aggregated values differ: "
                        f"{wv!r} vs {gv!r}")
            continue
        want_a, got_a = np.asarray(want), np.asarray(got)
        if want_a.shape != got_a.shape:
            return (f"step {i} ({step[0]}): shape {got_a.shape} != "
                    f"expected {want_a.shape}")
        tol = _step_tolerance(program, i)
        if tol is not None:
            if not _ulp_close(want_a, got_a, tol):
                return (f"step {i} ({step[0]}): beyond {tol:.0f}-ulp "
                        f"bound: {want_a!r} vs {got_a!r}")
        elif not np.array_equal(want_a, got_a, equal_nan=True):
            return (f"step {i} ({step[0]}): element mismatch: "
                    f"{want_a!r} vs {got_a!r}")
    return None


# ----------------------------------------------------------------------
# checking, shrinking, sweeping
# ----------------------------------------------------------------------
def check_program(program: Program, nworkers: int,
                  fault_plan: Optional[FaultPlan] = None,
                  expect_errors: bool = False,
                  timeout: float = 30.0,
                  recover: bool = False,
                  backend: Optional[str] = None) -> Optional[str]:
    """Differential check: None if conformant, else a failure string.

    With *expect_errors* (destructive fault plans), a typed
    :class:`MPIError` is an accepted outcome; a *wrong result* never is.
    With *recover*, crashes are expected to be recovered from -- the
    result must match the oracle despite the mid-program rank kill.
    """
    from ..mpi.errors import MPIError

    oracle = run_numpy(program)
    try:
        subject = run_distributed(program, nworkers, fault_plan, timeout,
                                  recover=recover, backend=backend)
    except MPIError as exc:
        if expect_errors:
            return None
        return f"typed MPI error: {type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return f"untyped {type(exc).__name__}: {exc!r}"
    return compare_observations(program, oracle, subject)


class ConformanceFailure:
    """A failing case: the program, its shrunk form, and how it failed."""

    def __init__(self, seed: int, nranks: int, chaos_mode: str,
                 program: Program, detail: str,
                 shrunk: Optional[Program] = None,
                 shrunk_detail: Optional[str] = None,
                 recover: bool = False,
                 backend: Optional[str] = None):
        self.seed = seed
        self.nranks = nranks
        self.chaos_mode = chaos_mode
        self.program = program
        self.detail = detail
        self.shrunk = shrunk or program
        self.shrunk_detail = shrunk_detail or detail
        self.recover = recover
        self.backend = backend

    def replay_line(self, strict: bool = False) -> str:
        flag = " --strict" if strict else ""
        if self.recover:
            flag += " --recover"
        if self.backend:
            flag += f" --backend {self.backend}"
        return (f"REPLAY: python -m repro.chaos --seed {self.seed} "
                f"--programs 1 --nranks {self.nranks} "
                f"--chaos {self.chaos_mode}{flag}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed, "nranks": self.nranks,
            "chaos": self.chaos_mode, "detail": self.detail,
            "backend": self.backend,
            "program": self.program.to_dict(),
            "shrunk": self.shrunk.to_dict(),
            "shrunk_detail": self.shrunk_detail,
            "shrunk_source": self.shrunk.describe(),
        }


def _drop_step(program: Program, victim: int) -> Optional[Program]:
    """Remove *victim* and every transitive dependent; reindex refs."""
    dead = {victim}
    refs = {"unary": (1,), "binary": (1, 2), "slice": (1,),
            "reduce": (1,), "redistribute": (1,)}
    for i, s in enumerate(program.steps):
        if i in dead:
            continue
        if any(s[r] in dead for r in refs.get(s[0], ())):
            dead.add(i)
    keep = [i for i in range(len(program.steps)) if i not in dead]
    if not keep:
        return None
    remap = {old: new for new, old in enumerate(keep)}
    steps = []
    for old in keep:
        s = list(program.steps[old])
        for r in refs.get(s[0], ()):
            s[r] = remap[s[r]]
        steps.append(s)
    return Program(program.seed, steps)


def _shrink_source(program: Program, i: int) -> Optional[Program]:
    """Halve one source's dims (floor 2); fix no downstream specs --
    callers validate candidates through the oracle."""
    s = program.steps[i]
    if s[0] == "source":
        shape = [max(2, n // 2) for n in s[1]]
        if shape == s[1]:
            return None
        steps = [list(x) for x in program.steps]
        steps[i] = [s[0], shape, s[2], s[3], s[4]]
        return Program(program.seed, steps)
    if s[0] == "mapreduce" and s[1] > 4:
        steps = [list(x) for x in program.steps]
        steps[i] = [s[0], max(4, s[1] // 2), s[2], s[3]]
        return Program(program.seed, steps)
    return None


def shrink_program(program: Program,
                   still_fails: Callable[[Program], bool],
                   max_rounds: int = 200) -> Program:
    """Greedy minimization: repeatedly drop steps (with dependents) and
    shrink source shapes while *still_fails* holds.

    Candidates that the NumPy oracle itself rejects (a shape-shrink can
    invalidate a downstream slice) are skipped, so *still_fails* is only
    consulted on well-formed programs.
    """
    def valid_and_fails(cand: Program) -> bool:
        try:
            run_numpy(cand)
        except Exception:
            return False
        return still_fails(cand)

    current = program
    for _round in range(max_rounds):
        improved = False
        for i in reversed(range(len(current.steps))):
            cand = _drop_step(current, i)
            if cand is not None and len(cand.steps) < len(current.steps) \
                    and valid_and_fails(cand):
                current = cand
                improved = True
                break
        if improved:
            continue
        for i in range(len(current.steps)):
            cand = _shrink_source(current, i)
            if cand is not None and valid_and_fails(cand):
                current = cand
                improved = True
                break
        if not improved:
            break
    return current


#: fault-plan templates the sweep/CLI can apply per (seed, nranks);
#: "benign" plans must leave results exact, destructive ones may only
#: surface as typed errors
CHAOS_MODES = ("none", "benign", "delay", "crash", "truncate")


def plan_for_mode(mode: str, seed: int,
                  nranks: int) -> Tuple[Optional[FaultPlan], bool]:
    """(fault plan, expect_errors) for a chaos *mode*.

    World ranks in an ODIN context are driver=0, workers=1..nranks; the
    plans only target worker ranks so the driver thread (which is the
    caller) never crashes.
    """
    if mode == "none":
        return None, False
    victim = 1 + _mix(seed, nranks) % nranks
    if mode == "benign":
        return (FaultPlan(seed=seed)
                .delay(seconds=0.002, prob=0.15)
                .slowdown(seconds=0.001, rank=victim, prob=0.1)
                .reorder(depth=2, prob=0.2)), False
    if mode == "delay":
        return (FaultPlan(seed=seed)
                .delay(seconds=0.005, rank=victim, prob=0.5)), False
    if mode == "crash":
        after = 5 + _mix(seed, nranks, 1) % 60
        return FaultPlan(seed=seed).crash(rank=victim, after=after), True
    if mode == "truncate":
        return (FaultPlan(seed=seed)
                .truncate(keep=0.5, rank=victim, prob=0.3)), True
    raise ValueError(f"unknown chaos mode {mode!r}; "
                     f"expected one of {CHAOS_MODES}")


def run_sweep(seed: int, nprograms: int, nranks_list: Sequence[int],
              chaos_mode: str = "none", max_steps: int = 10,
              timeout: float = 30.0, strict: bool = False,
              shrink: bool = True, max_failures: int = 5,
              log: Callable[[str], None] = None,
              recover: bool = False,
              backend: Optional[str] = None) -> List[ConformanceFailure]:
    """Fixed-seed conformance sweep; returns the (shrunk) failures.

    Program *i* uses seed ``seed + i``, so any failure replays in
    isolation with ``--seed seed+i --programs 1``.  With *strict*, typed
    errors under destructive chaos modes also count as failures (used to
    exercise the replay machinery on a case guaranteed to fail).  With
    *recover*, contexts run with fault recovery on and destructive
    crashes must yield oracle-conformant results, not typed errors
    (needs nranks >= 2: a sole worker's crash leaves no survivors).
    """
    failures: List[ConformanceFailure] = []
    for i in range(nprograms):
        pseed = seed + i
        program = generate_program(pseed, max_steps=max_steps)
        for nranks in nranks_list:
            plan, expect = plan_for_mode(chaos_mode, pseed, nranks)
            expect = expect and not strict and not recover
            detail = check_program(program, nranks, plan, expect, timeout,
                                   recover=recover, backend=backend)
            if detail is None:
                continue
            shrunk, shrunk_detail = program, detail
            if shrink:
                def fails(cand: Program) -> bool:
                    return check_program(cand, nranks, plan, expect,
                                         timeout, recover=recover,
                                         backend=backend) is not None
                shrunk = shrink_program(program, fails)
                shrunk_detail = check_program(shrunk, nranks, plan,
                                              expect, timeout,
                                              recover=recover,
                                              backend=backend) or detail
            failure = ConformanceFailure(pseed, nranks, chaos_mode,
                                         program, detail, shrunk,
                                         shrunk_detail, recover=recover,
                                         backend=backend)
            failures.append(failure)
            if log is not None:
                log(f"FAIL seed={pseed} nranks={nranks} "
                    f"chaos={chaos_mode}\n  {detail}\n"
                    f"  shrunk to {len(shrunk.steps)} step(s):\n"
                    + "\n".join("    " + ln
                                for ln in shrunk.describe().splitlines())
                    + f"\n  shrunk failure: {shrunk_detail}\n  "
                    + failure.replay_line(strict))
            if len(failures) >= max_failures:
                return failures
    return failures
