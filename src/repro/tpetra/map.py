"""Distribution maps: who owns which global indices (Tpetra::Map).

A :class:`Map` is the global-to-local index translation at the heart of all
distributed objects.  Tpetra templates these on ``LocalOrdinal`` /
``GlobalOrdinal``; here ordinals are NumPy int64 throughout (the paper notes
Python's int corresponds to C long, making that the natural choice), and
genericity over Scalar lives in the Vector/Matrix classes instead.

Supported distributions mirror what ODIN's creation routines can request:
contiguous uniform blocks, user-specified block sizes (nonuniform),
round-robin cyclic, and fully arbitrary global-index lists.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..mpi import Intracomm

__all__ = ["Map"]


class Map:
    """Describes the distribution of ``num_global`` indices over a comm.

    Each rank's instance stores the global indices it owns (``my_gids``).
    For contiguous and cyclic maps, ownership questions are answered
    analytically; arbitrary maps get a distributed directory on demand
    (see :class:`repro.tpetra.directory.Directory`).
    """

    def __init__(self, num_global: int, my_gids: np.ndarray, comm: Intracomm,
                 kind: str = "arbitrary",
                 block_offsets: Optional[np.ndarray] = None):
        self.num_global = int(num_global)
        self.my_gids = np.asarray(my_gids, dtype=np.int64)
        self.comm = comm
        self.kind = kind
        # For contiguous maps: offsets[r] .. offsets[r+1] are rank r's gids.
        self.block_offsets = block_offsets
        self._lid_of: Optional[dict] = None
        self._directory = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def create_contiguous(cls, num_global: int, comm: Intracomm) -> "Map":
        """Uniform contiguous block distribution (Tpetra's default)."""
        p = comm.size
        counts = np.full(p, num_global // p, dtype=np.int64)
        counts[:num_global % p] += 1
        offsets = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        return cls(num_global, np.arange(lo, hi, dtype=np.int64), comm,
                   kind="contiguous", block_offsets=offsets)

    @classmethod
    def create_from_local_counts(cls, local_count: int,
                                 comm: Intracomm) -> "Map":
        """Contiguous distribution with per-rank block sizes (nonuniform)."""
        counts = comm.allgather(int(local_count))
        offsets = np.zeros(comm.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        return cls(int(offsets[-1]), np.arange(lo, hi, dtype=np.int64), comm,
                   kind="contiguous", block_offsets=offsets)

    @classmethod
    def create_cyclic(cls, num_global: int, comm: Intracomm) -> "Map":
        """Round-robin distribution: gid g lives on rank g % p."""
        gids = np.arange(comm.rank, num_global, comm.size, dtype=np.int64)
        return cls(num_global, gids, comm, kind="cyclic")

    @classmethod
    def create_from_gids(cls, my_gids: Sequence[int],
                         comm: Intracomm) -> "Map":
        """Arbitrary distribution from each rank's owned global indices.

        The gid sets must partition ``0..num_global-1`` (checked).
        """
        my_gids = np.asarray(my_gids, dtype=np.int64)
        total = comm.allreduce(len(my_gids))
        max_gid = comm.allreduce(int(my_gids.max()) if len(my_gids) else -1,
                                 op=_mpi_max())
        num_global = max_gid + 1
        if total != num_global:
            raise ValueError(
                f"gid lists do not partition the index space: {total} gids "
                f"for {num_global} global indices")
        return cls(num_global, my_gids, comm, kind="arbitrary")

    # ------------------------------------------------------------------
    # local queries
    # ------------------------------------------------------------------
    @property
    def num_my_elements(self) -> int:
        return len(self.my_gids)

    @property
    def min_my_gid(self) -> int:
        return int(self.my_gids.min()) if len(self.my_gids) else -1

    @property
    def max_my_gid(self) -> int:
        return int(self.my_gids.max()) if len(self.my_gids) else -1

    def gid(self, lid: int) -> int:
        """Global index of a local index."""
        return int(self.my_gids[lid])

    def lid(self, gid) -> np.ndarray:
        """Local index/indices of global index/indices; -1 when not owned."""
        scalar = np.isscalar(gid)
        gid = np.atleast_1d(np.asarray(gid, dtype=np.int64))
        if self.kind == "contiguous":
            lo = self.block_offsets[self.comm.rank]
            hi = self.block_offsets[self.comm.rank + 1]
            out = np.where((gid >= lo) & (gid < hi), gid - lo, -1)
        elif self.kind == "cyclic":
            mine = (gid % self.comm.size) == self.comm.rank
            out = np.where(mine, gid // self.comm.size, -1)
        else:
            if self._lid_of is None:
                self._lid_of = {int(g): i for i, g in enumerate(self.my_gids)}
            out = np.fromiter(
                (self._lid_of.get(int(g), -1) for g in gid),
                dtype=np.int64, count=len(gid))
        return int(out[0]) if scalar else out

    def owns(self, gid) -> np.ndarray:
        out = self.lid(gid)
        if np.isscalar(out):
            return out >= 0
        return out >= 0

    # ------------------------------------------------------------------
    # global queries
    # ------------------------------------------------------------------
    def owner_rank(self, gids) -> np.ndarray:
        """Rank owning each global index (collective for arbitrary maps)."""
        scalar = np.isscalar(gids)
        gids = np.atleast_1d(np.asarray(gids, dtype=np.int64))
        if np.any((gids < 0) | (gids >= self.num_global)):
            raise IndexError("global index out of range")
        if self.kind == "contiguous":
            out = np.searchsorted(self.block_offsets, gids, side="right") - 1
        elif self.kind == "cyclic":
            out = gids % self.comm.size
        else:
            out = self.directory().owners(gids)
        out = out.astype(np.int64)
        return int(out[0]) if scalar else out

    def directory(self):
        if self._directory is None:
            from .directory import Directory
            self._directory = Directory(self)
        return self._directory

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def same_as(self, other: "Map") -> bool:
        """True when both maps assign identical gids to this rank.

        Collective: all ranks must agree for distributed objects built on
        them to be interchangeable, so the local verdict is allreduced.
        """
        local = (self.num_global == other.num_global
                 and len(self.my_gids) == len(other.my_gids)
                 and bool(np.array_equal(self.my_gids, other.my_gids)))
        return bool(self.comm.allreduce(local, op=_mpi_land()))

    def locally_same_as(self, other: "Map") -> bool:
        """Non-collective version of :meth:`same_as` for this rank only."""
        return (self.num_global == other.num_global
                and np.array_equal(self.my_gids, other.my_gids))

    def is_one_to_one(self) -> bool:
        """Maps constructed here always partition the space."""
        return True

    def __repr__(self):
        return (f"Map(num_global={self.num_global}, kind={self.kind!r}, "
                f"rank={self.comm.rank} owns {self.num_my_elements})")


def _mpi_max():
    from ..mpi import MAX
    return MAX


def _mpi_land():
    from ..mpi import LAND
    return LAND
