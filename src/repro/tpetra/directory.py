"""Distributed directory: owner lookup for arbitrary maps (Tpetra::Directory).

For maps whose distribution has no closed form, ownership of gid *g* is
registered with the "directory rank" ``g // ceil(N/p)``.  Owner queries then
take two all-to-all exchanges (ask the directory ranks, receive answers),
which is exactly the Tpetra scheme.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Directory"]


class Directory:
    """Owner/LID lookup service for one :class:`~repro.tpetra.map.Map`."""

    def __init__(self, map_):
        self.map = map_
        comm = map_.comm
        p = comm.size
        self._block = max(1, -(-map_.num_global // p))  # ceil div
        # Register my (gid, lid) pairs with their directory ranks.
        my_gids = map_.my_gids
        dir_ranks = np.minimum(my_gids // self._block, p - 1)
        sendobjs = []
        for r in range(p):
            mask = dir_ranks == r
            sendobjs.append((my_gids[mask],
                             np.arange(len(my_gids), dtype=np.int64)[mask]))
        received = comm.alltoall(sendobjs)
        # Directory table for the gids this rank is responsible for.
        n_dir = min(self._block, max(0, map_.num_global - comm.rank * self._block))
        self._owner = np.full(max(n_dir, 0), -1, dtype=np.int64)
        self._lid = np.full(max(n_dir, 0), -1, dtype=np.int64)
        base = comm.rank * self._block
        for src_rank, (gids, lids) in enumerate(received):
            if len(gids):
                idx = gids - base
                self._owner[idx] = src_rank
                self._lid[idx] = lids

    def owners_and_lids(self, gids):
        """For each queried gid: (owning rank, lid on that rank).

        Collective: every rank must call with its own (possibly empty)
        query list.
        """
        comm = self.map.comm
        p = comm.size
        gids = np.asarray(gids, dtype=np.int64)
        dir_ranks = np.minimum(gids // self._block, p - 1)
        queries = []
        positions = []  # to scatter answers back into input order
        for r in range(p):
            mask = dir_ranks == r
            queries.append(gids[mask])
            positions.append(np.nonzero(mask)[0])
        answers_in = comm.alltoall(queries)
        base = comm.rank * self._block
        answers_out = []
        for asked in answers_in:
            idx = asked - base
            answers_out.append((self._owner[idx], self._lid[idx]))
        replies = comm.alltoall(answers_out)
        owners = np.full(len(gids), -1, dtype=np.int64)
        lids = np.full(len(gids), -1, dtype=np.int64)
        for r in range(p):
            own, lid = replies[r]
            owners[positions[r]] = own
            lids[positions[r]] = lid
        return owners, lids

    def owners(self, gids):
        return self.owners_and_lids(gids)[0]
