"""Abstract operator interface (Tpetra::Operator).

Anything that can apply itself to a vector -- matrices, preconditioners,
AMG hierarchies, matrix-free user operators -- implements this protocol, so
the Krylov solvers in :mod:`repro.solvers` compose them freely.
"""

from __future__ import annotations

from typing import Callable, Optional

from .map import Map
from .multivector import Vector

__all__ = ["Operator", "LinearOperator", "IdentityOperator",
           "ScaledOperator", "ComposedOperator"]


class Operator:
    """Base class: a linear map between two distributed index spaces."""

    def domain_map(self) -> Map:
        raise NotImplementedError

    def range_map(self) -> Map:
        raise NotImplementedError

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        """y = op(x) (or op^T(x) when *trans*)."""
        raise NotImplementedError

    # -- conveniences --------------------------------------------------
    def __matmul__(self, x):
        if isinstance(x, Vector):
            y = Vector(self.range_map(), dtype=x.dtype)
            self.apply(x, y)
            return y
        return NotImplemented

    def matvec(self, x: Vector) -> Vector:
        y = Vector(self.range_map(), dtype=x.dtype)
        self.apply(x, y)
        return y


class LinearOperator(Operator):
    """Matrix-free operator from a callable ``fn(x_vector) -> y_vector``."""

    def __init__(self, domain: Map, range_: Map,
                 fn: Callable[[Vector], Vector],
                 fn_trans: Optional[Callable[[Vector], Vector]] = None):
        self._domain = domain
        self._range = range_
        self._fn = fn
        self._fn_trans = fn_trans

    def domain_map(self) -> Map:
        return self._domain

    def range_map(self) -> Map:
        return self._range

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        if trans:
            if self._fn_trans is None:
                raise NotImplementedError("no transpose callable supplied")
            result = self._fn_trans(x)
        else:
            result = self._fn(x)
        y.local[...] = result.local


class IdentityOperator(Operator):
    def __init__(self, map_: Map):
        self._map = map_

    def domain_map(self) -> Map:
        return self._map

    def range_map(self) -> Map:
        return self._map

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        y.local[...] = x.local


class ScaledOperator(Operator):
    """alpha * op."""

    def __init__(self, op: Operator, alpha: float):
        self.op = op
        self.alpha = alpha

    def domain_map(self) -> Map:
        return self.op.domain_map()

    def range_map(self) -> Map:
        return self.op.range_map()

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        self.op.apply(x, y, trans=trans)
        y.scale(self.alpha)


class ComposedOperator(Operator):
    """(a . b): apply b then a."""

    def __init__(self, a: Operator, b: Operator):
        self.a = a
        self.b = b

    def domain_map(self) -> Map:
        return self.b.domain_map()

    def range_map(self) -> Map:
        return self.a.range_map()

    def apply(self, x: Vector, y: Vector, trans: bool = False) -> None:
        if trans:
            tmp = Vector(self.a.domain_map(), dtype=x.dtype)
            self.a.apply(x, tmp, trans=True)
            self.b.apply(tmp, y, trans=True)
        else:
            tmp = Vector(self.b.range_map(), dtype=x.dtype)
            self.b.apply(x, tmp)
            self.a.apply(tmp, y)
