"""Distributed vectors and multivectors (Tpetra::Vector / MultiVector).

Design philosophy straight from the paper (section II): *"make it as much
like NumPy as possible."*  Vectors support arithmetic operators, ufunc-style
elementwise math, global advanced indexing with ``v[gids]``, and expose
their local segment as a plain ndarray -- while the Tpetra method spellings
(``norm2``, ``update``, ``putScalar``, ``dot``) remain available for users
coming from Trilinos.

The Scalar template parameter of Tpetra becomes the NumPy ``dtype``: float,
complex, integer, or "potentially more exotic data types as well, just as
NumPy does."
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..mpi import MAX, SUM
from .import_export import CombineMode, Export, Import
from .map import Map

__all__ = ["MultiVector", "Vector"]

Number = Union[int, float, complex]


class MultiVector:
    """``num_vectors`` distributed vectors sharing one :class:`Map`.

    Local storage is ``(num_my_elements, num_vectors)`` C-ordered, so a
    single column view is itself contiguous per element row.
    """

    def __init__(self, map_: Map, num_vectors: int = 1,
                 dtype=np.float64, _local: Optional[np.ndarray] = None):
        self.map = map_
        self.num_vectors = int(num_vectors)
        if _local is not None:
            expected = (map_.num_my_elements, self.num_vectors)
            if _local.shape != expected:
                raise ValueError(f"local block shape {_local.shape} != "
                                 f"{expected}")
            self.local = np.ascontiguousarray(_local)
        else:
            self.local = np.zeros((map_.num_my_elements, self.num_vectors),
                                  dtype=dtype)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def dtype(self):
        return self.local.dtype

    @property
    def comm(self):
        return self.map.comm

    @property
    def global_length(self) -> int:
        return self.map.num_global

    @property
    def local_length(self) -> int:
        return self.map.num_my_elements

    def copy(self) -> "MultiVector":
        return type(self)._like(self, self.local.copy())

    @classmethod
    def _like(cls, other: "MultiVector", local: np.ndarray) -> "MultiVector":
        out = cls.__new__(cls)
        out.map = other.map
        out.num_vectors = local.shape[1] if local.ndim == 2 else 1
        out.local = np.ascontiguousarray(local.reshape(
            other.map.num_my_elements, -1))
        return out

    def putScalar(self, alpha: Number) -> "MultiVector":
        self.local[...] = alpha
        return self

    def randomize(self, seed: Optional[int] = None) -> "MultiVector":
        """Fill with uniform(-1, 1), independently per rank.

        With a seed, each rank derives ``seed + rank`` so the global vector
        is deterministic for a fixed distribution.
        """
        rng = np.random.default_rng(
            None if seed is None else seed + self.comm.rank)
        self.local[...] = rng.uniform(-1.0, 1.0, size=self.local.shape)
        return self

    def vector(self, j: int) -> "Vector":
        """Vector view of column *j* (shares storage)."""
        return Vector._from_column(self, j)

    # ------------------------------------------------------------------
    # reductions (collective)
    # ------------------------------------------------------------------
    def dot(self, other: "MultiVector") -> np.ndarray:
        """Per-column global dot products (conjugating self for complex)."""
        local = np.einsum("ij,ij->j", np.conj(self.local), other.local)
        out = np.zeros_like(local)
        self.comm.Allreduce(local, out, op=SUM)
        return out

    def norm2(self) -> np.ndarray:
        local = np.einsum("ij,ij->j", np.conj(self.local),
                          self.local).real
        out = np.zeros_like(local)
        self.comm.Allreduce(local, out, op=SUM)
        return np.sqrt(out)

    def norm1(self) -> np.ndarray:
        local = np.abs(self.local).sum(axis=0)
        out = np.zeros_like(local)
        self.comm.Allreduce(local, out, op=SUM)
        return out

    def normInf(self) -> np.ndarray:
        local = np.abs(self.local).max(axis=0) if self.local_length else \
            np.zeros(self.num_vectors)
        out = np.zeros_like(local)
        self.comm.Allreduce(local, out, op=MAX)
        return out

    def meanValue(self) -> np.ndarray:
        local = self.local.sum(axis=0)
        out = np.zeros_like(local)
        self.comm.Allreduce(local, out, op=SUM)
        return out / self.global_length

    # ------------------------------------------------------------------
    # BLAS-style updates (local, no communication)
    # ------------------------------------------------------------------
    def scale(self, alpha: Number) -> "MultiVector":
        self.local *= alpha
        return self

    def update(self, alpha: Number, a: "MultiVector",
               beta: Number) -> "MultiVector":
        """this = alpha*a + beta*this (Tpetra update signature)."""
        self.local *= beta
        self.local += alpha * a.local
        return self

    def elementwise_multiply(self, scalar: Number, a: "MultiVector",
                             b: "MultiVector", beta: Number = 0.0
                             ) -> "MultiVector":
        """this = beta*this + scalar * a .* b."""
        self.local *= beta
        self.local += scalar * a.local * b.local
        return self

    def abs(self) -> "MultiVector":
        return type(self)._like(self, np.abs(self.local))

    def reciprocal(self) -> "MultiVector":
        return type(self)._like(self, 1.0 / self.local)

    # ------------------------------------------------------------------
    # NumPy-like operators
    # ------------------------------------------------------------------
    def _coerce(self, other):
        if isinstance(other, MultiVector):
            if not self.map.locally_same_as(other.map):
                raise ValueError("operands have different maps; import one "
                                 "onto the other's map first")
            return other.local
        return other

    def __add__(self, other):
        return type(self)._like(self, self.local + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other):
        return type(self)._like(self, self.local - self._coerce(other))

    def __rsub__(self, other):
        return type(self)._like(self, self._coerce(other) - self.local)

    def __mul__(self, other):
        return type(self)._like(self, self.local * self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return type(self)._like(self, self.local / self._coerce(other))

    def __rtruediv__(self, other):
        return type(self)._like(self, self._coerce(other) / self.local)

    def __pow__(self, exponent):
        return type(self)._like(self, self.local ** exponent)

    def __neg__(self):
        return type(self)._like(self, -self.local)

    def __iadd__(self, other):
        self.local += self._coerce(other)
        return self

    def __isub__(self, other):
        self.local -= self._coerce(other)
        return self

    def __imul__(self, other):
        self.local *= self._coerce(other)
        return self

    def __itruediv__(self, other):
        self.local /= self._coerce(other)
        return self

    # ------------------------------------------------------------------
    # redistribution and gather
    # ------------------------------------------------------------------
    def import_from(self, source: "MultiVector", importer: Import,
                    mode: CombineMode = CombineMode.INSERT) -> "MultiVector":
        importer.apply(source.local, self.local, mode)
        return self

    def export_to(self, target: "MultiVector", exporter: Export,
                  mode: CombineMode = CombineMode.ADD) -> "MultiVector":
        exporter.apply(self.local, target.local, mode)
        return target

    def gather(self, root: int = 0) -> Optional[np.ndarray]:
        """Assemble the full global array on *root* (None elsewhere).

        Collective.  The result rows are ordered by global index.
        """
        pieces = self.comm.gather((self.map.my_gids, self.local), root=root)
        if pieces is None:
            return None
        out = np.zeros((self.global_length, self.num_vectors),
                       dtype=self.dtype)
        for gids, block in pieces:
            out[gids] = block
        return out

    def gather_all(self) -> np.ndarray:
        """Assemble the full global array on every rank. Collective."""
        pieces = self.comm.allgather((self.map.my_gids, self.local))
        out = np.zeros((self.global_length, self.num_vectors),
                       dtype=self.dtype)
        for gids, block in pieces:
            out[gids] = block
        return out

    def __array__(self, dtype=None, copy=None):
        arr = self.gather_all()
        if self.num_vectors == 1:
            arr = arr[:, 0]
        return arr.astype(dtype) if dtype is not None else arr

    def __repr__(self):
        return (f"{type(self).__name__}(global={self.global_length}, "
                f"nvec={self.num_vectors}, dtype={self.dtype}, "
                f"rank {self.comm.rank} holds {self.local_length})")


class Vector(MultiVector):
    """A single distributed vector: a MultiVector with one column, with
    scalar-returning reductions and 1-D global indexing."""

    def __init__(self, map_: Map, dtype=np.float64,
                 _local: Optional[np.ndarray] = None):
        if _local is not None and _local.ndim == 1:
            _local = _local.reshape(-1, 1)
        super().__init__(map_, 1, dtype=dtype, _local=_local)

    @classmethod
    def _from_column(cls, mv: MultiVector, j: int) -> "Vector":
        out = cls.__new__(cls)
        out.map = mv.map
        out.num_vectors = 1
        out.local = mv.local[:, j:j + 1]
        return out

    @classmethod
    def _like(cls, other: "MultiVector", local: np.ndarray) -> "Vector":
        if local.ndim == 2 and local.shape[1] != 1:
            return MultiVector._like(other, local)
        out = cls.__new__(cls)
        out.map = other.map
        out.num_vectors = 1
        out.local = np.ascontiguousarray(local.reshape(-1, 1))
        return out

    @property
    def local_view(self) -> np.ndarray:
        """1-D view of this rank's segment (writable)."""
        return self.local[:, 0]

    @local_view.setter
    def local_view(self, values) -> None:
        # supports augmented assignment (v.local_view += ...); numpy
        # self-assignment of the mutated view is safe.
        self.local[:, 0] = values

    def dot(self, other: "MultiVector"):
        return complex(super().dot(other)[0]) if \
            np.iscomplexobj(self.local) else float(super().dot(other)[0])

    def norm2(self) -> float:
        return float(super().norm2()[0])

    def norm1(self) -> float:
        return float(super().norm1()[0])

    def normInf(self) -> float:
        return float(super().normInf()[0])

    def meanValue(self) -> float:
        return float(super().meanValue()[0])

    # -- global advanced indexing (the paper's "advanced indexing" claim) --
    def __getitem__(self, gids):
        """Global read access.  Collective when any index is remote.

        ``v[7]`` or ``v[[1, 5, 9]]`` returns values regardless of where the
        indices live, via an Import onto a temporary map.
        """
        scalar = np.isscalar(gids)
        gids = np.atleast_1d(np.asarray(gids, dtype=np.int64))
        lids = self.map.lid(gids)
        # Fast path would be local-only, but remoteness is a global
        # property, so this read is collective by contract.
        owners_local = lids >= 0
        all_local = self.comm.allreduce(bool(owners_local.all()),
                                        op=_land())
        if all_local:
            values = self.local_view[np.maximum(lids, 0)]
        else:
            values = _import_values(self, gids)
        return values[0] if scalar else values

    def __setitem__(self, gids, values) -> None:
        """Global write access: each rank writes the entries it owns."""
        gids = np.atleast_1d(np.asarray(gids, dtype=np.int64))
        values = np.broadcast_to(np.asarray(values, dtype=self.dtype),
                                 gids.shape)
        lids = self.map.lid(gids)
        mask = lids >= 0
        self.local_view[lids[mask]] = values[mask]


def _import_values(vec: Vector, gids: np.ndarray) -> np.ndarray:
    """Fetch arbitrary global entries of a distributed vector (collective)."""
    overlap_map = Map(vec.map.num_global, gids, vec.comm, kind="arbitrary")
    importer = Import(vec.map, overlap_map)
    out = np.zeros((len(gids), 1), dtype=vec.dtype)
    importer.apply(vec.local, out, CombineMode.INSERT)
    return out[:, 0]


def _land():
    from ..mpi import LAND
    return LAND
