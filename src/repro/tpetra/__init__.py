"""repro.tpetra -- second-generation distributed linear algebra.

The Tpetra equivalent: maps describing data distribution, vectors and
multivectors, redistribution plans (Import/Export), and row-distributed
sparse matrices.  Scalar genericity (Tpetra's templates) is expressed with
NumPy dtypes; ordinals are int64.

Typical SPMD usage::

    from repro import mpi, tpetra

    def program(comm):
        m = tpetra.Map.create_contiguous(1000, comm)
        A = tpetra.CrsMatrix(m)
        for gid in m.my_gids:
            A.insert_global_values(gid, [gid], [2.0])
            if gid > 0:
                A.insert_global_values(gid, [gid - 1], [-1.0])
            if gid < 999:
                A.insert_global_values(gid, [gid + 1], [-1.0])
        A.fillComplete()
        x = tpetra.Vector(m).putScalar(1.0)
        return (A @ x).norm2()

    mpi.run_spmd(program, nranks=4)
"""

from .crsmatrix import CrsGraph, CrsMatrix
from .import_export import CombineMode, Export, Import
from .map import Map
from .multivector import MultiVector, Vector
from .operator import (ComposedOperator, IdentityOperator, LinearOperator,
                       Operator, ScaledOperator)

__all__ = [
    "Map", "Vector", "MultiVector", "Import", "Export", "CombineMode",
    "CrsMatrix", "CrsGraph", "Operator", "LinearOperator",
    "IdentityOperator", "ScaledOperator", "ComposedOperator",
]
