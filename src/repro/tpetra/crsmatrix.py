"""Distributed compressed-row sparse matrices (Tpetra::CrsMatrix).

Rows are distributed by a row :class:`Map`; each rank stores its row block
as a local ``scipy.sparse.csr_matrix`` whose column indices point into a
*column map* (owned domain indices first, then remote indices).  SpMV is
then one Import (halo exchange of the needed remote x entries) plus a local
CSR multiply -- the standard distributed-memory kernel.

Assembly supports nonlocal inserts: contributions to rows owned elsewhere
are buffered and shipped to their owners at :meth:`fillComplete`, which is
what makes finite-element assembly (paper use case III-F) a one-liner per
element.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..mpi import MAX, SUM
from .import_export import CombineMode, Import
from .map import Map
from .multivector import MultiVector, Vector
from .operator import Operator

__all__ = ["CrsMatrix", "CrsGraph"]


class CrsMatrix(Operator):
    """A row-distributed sparse matrix."""

    def __init__(self, row_map: Map, dtype=np.float64):
        self.row_map = row_map
        self.dtype = np.dtype(dtype)
        self._filled = False
        # builder state: per local row, lists of (gids, values)
        self._build_rows: List[List[Tuple[np.ndarray, np.ndarray]]] = \
            [[] for _ in range(row_map.num_my_elements)]
        self._nonlocal: Dict[int, Tuple[list, list, list]] = {}
        # post-fill state
        self.local_matrix: Optional[sp.csr_matrix] = None
        self.col_map_gids: Optional[np.ndarray] = None
        self.domain: Optional[Map] = None
        self.range: Optional[Map] = None
        self.importer: Optional[Import] = None

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def insert_global_values(self, global_row: int, cols, values) -> None:
        """Add entries to one global row (duplicates are summed).

        The row need not be owned by this rank; nonlocal contributions are
        exchanged at :meth:`fillComplete`.
        """
        if self._filled:
            raise RuntimeError("matrix is fill-complete; use "
                               "replace_local_values to modify")
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        values = np.broadcast_to(
            np.asarray(values, dtype=self.dtype), cols.shape)
        lrow = self.row_map.lid(int(global_row))
        if lrow >= 0:
            self._build_rows[lrow].append((cols, np.array(values)))
        else:
            rows, cs, vs = self._nonlocal.setdefault(
                int(global_row), ([], [], []))
            rows.append(int(global_row))
            cs.append(cols)
            vs.append(np.array(values))

    sum_into_global_values = insert_global_values

    def fillComplete(self, domain_map: Optional[Map] = None,
                     range_map: Optional[Map] = None) -> "CrsMatrix":
        """Finish assembly: ship nonlocal rows, build CSR + column map +
        halo importer.  Collective."""
        if self._filled:
            raise RuntimeError("fillComplete called twice")
        comm = self.row_map.comm
        self.domain = domain_map if domain_map is not None else self.row_map
        self.range = range_map if range_map is not None else self.row_map

        # 1. ship nonlocal contributions to their owning ranks
        if comm.size > 1:
            out = [[] for _ in range(comm.size)]
            # owner_rank is collective on arbitrary maps: every rank calls
            # it, with an empty query list when it has nothing nonlocal.
            grows = np.array(sorted(self._nonlocal), dtype=np.int64)
            owners = self.row_map.owner_rank(grows)
            for grow, owner in zip(grows, owners):
                _rows, cs, vs = self._nonlocal[int(grow)]
                out[int(owner)].append(
                    (int(grow), np.concatenate(cs), np.concatenate(vs)))
            incoming = comm.alltoall(out)
            for batch in incoming:
                for grow, cols, vals in batch:
                    lrow = self.row_map.lid(grow)
                    if lrow < 0:
                        raise AssertionError("nonlocal row shipped to wrong "
                                             "owner")
                    self._build_rows[lrow].append((cols, vals))
        elif self._nonlocal:
            raise ValueError("nonlocal inserts with a single rank: row gid "
                             "out of range")
        self._nonlocal = {}

        # 2. build the column map: owned domain gids first, remotes after
        nloc = self.row_map.num_my_elements
        all_cols = [c for row in self._build_rows for (c, _v) in row]
        col_gids = np.unique(np.concatenate(all_cols)) if all_cols else \
            np.empty(0, dtype=np.int64)
        if len(col_gids) and (col_gids.min() < 0
                              or col_gids.max() >= self.domain.num_global):
            raise IndexError("column index out of domain range")
        owned_mask = self.domain.lid(col_gids) >= 0 if len(col_gids) else \
            np.empty(0, dtype=bool)
        remote_gids = col_gids[~owned_mask]
        owned_gids = self.domain.my_gids
        self.col_map_gids = np.concatenate([owned_gids, remote_gids])
        col_lid = {int(g): i for i, g in enumerate(self.col_map_gids)}

        # 3. local CSR via COO assembly (duplicates summed)
        rows_idx = []
        cols_idx = []
        vals = []
        for lrow, row in enumerate(self._build_rows):
            for cols, values in row:
                rows_idx.append(np.full(len(cols), lrow, dtype=np.int64))
                cols_idx.append(np.fromiter(
                    (col_lid[int(c)] for c in cols), dtype=np.int64,
                    count=len(cols)))
                vals.append(values)
        if rows_idx:
            coo = sp.coo_matrix(
                (np.concatenate(vals),
                 (np.concatenate(rows_idx), np.concatenate(cols_idx))),
                shape=(nloc, len(self.col_map_gids)), dtype=self.dtype)
        else:
            coo = sp.coo_matrix((nloc, len(self.col_map_gids)),
                                dtype=self.dtype)
        self.local_matrix = coo.tocsr()
        self.local_matrix.sum_duplicates()
        self._build_rows = []

        # 4. halo importer: domain layout -> column-map layout
        col_map = Map(self.domain.num_global, self.col_map_gids, comm,
                      kind="arbitrary")
        self.importer = Import(self.domain, col_map)
        self._filled = True
        return self

    @property
    def is_fill_complete(self) -> bool:
        return self._filled

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def domain_map(self) -> Map:
        return self.domain if self.domain is not None else self.row_map

    def range_map(self) -> Map:
        return self.range if self.range is not None else self.row_map

    def _require_filled(self):
        if not self._filled:
            raise RuntimeError("call fillComplete() first")

    def _import_columns(self, x_local: np.ndarray) -> np.ndarray:
        """Halo exchange: build the column-map-ordered copy of x."""
        ncols = len(self.col_map_gids)
        nvec = x_local.shape[1]
        x_col = np.zeros((ncols, nvec), dtype=x_local.dtype)
        self.importer.apply(x_local, x_col, CombineMode.INSERT)
        return x_col

    def apply(self, x, y, trans: bool = False) -> None:
        """y = A x (one Import + local CSR multiply); transpose uses the
        reverse plan to push contributions back to owners."""
        self._require_filled()
        if trans:
            # w (column-map layout) = A_local^T x_local ; then reverse-
            # import (an export) sums overlapping contributions at owners.
            w = self.local_matrix.T @ x.local
            y.local[...] = 0
            self.importer.apply_reverse(np.ascontiguousarray(w), y.local,
                                        CombineMode.ADD)
        else:
            x_col = self._import_columns(x.local)
            y.local[...] = self.local_matrix @ x_col

    def __matmul__(self, x):
        if isinstance(x, Vector):
            y = Vector(self.range_map(),
                       dtype=np.result_type(self.dtype, x.dtype))
            self.apply(x, y)
            return y
        if isinstance(x, MultiVector):
            y = MultiVector(self.range_map(), x.num_vectors,
                            dtype=np.result_type(self.dtype, x.dtype))
            self.apply(x, y)
            return y
        if isinstance(x, CrsMatrix):
            return self.matmat(x)
        return NotImplemented

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_my_rows(self) -> int:
        return self.row_map.num_my_elements

    @property
    def num_global_rows(self) -> int:
        return self.row_map.num_global

    @property
    def num_global_cols(self) -> int:
        return self.domain_map().num_global

    def num_global_nonzeros(self) -> int:
        self._require_filled()
        return int(self.row_map.comm.allreduce(self.local_matrix.nnz))

    def global_row(self, global_row: int):
        """(column gids, values) of one owned global row."""
        self._require_filled()
        lrow = self.row_map.lid(int(global_row))
        if lrow < 0:
            raise KeyError(f"row {global_row} not owned by rank "
                           f"{self.row_map.comm.rank}")
        sl = slice(self.local_matrix.indptr[lrow],
                   self.local_matrix.indptr[lrow + 1])
        return (self.col_map_gids[self.local_matrix.indices[sl]],
                self.local_matrix.data[sl])

    def diagonal(self) -> Vector:
        """The matrix diagonal as a vector on the row map."""
        self._require_filled()
        d = Vector(self.row_map, dtype=self.dtype)
        for lrow in range(self.num_my_rows):
            grow = self.row_map.gid(lrow)
            sl = slice(self.local_matrix.indptr[lrow],
                       self.local_matrix.indptr[lrow + 1])
            cols = self.col_map_gids[self.local_matrix.indices[sl]]
            hit = np.nonzero(cols == grow)[0]
            if len(hit):
                d.local_view[lrow] = self.local_matrix.data[sl][hit[0]]
        return d

    def row_sums(self, absolute: bool = True) -> Vector:
        self._require_filled()
        m = abs(self.local_matrix) if absolute else self.local_matrix
        out = Vector(self.row_map, dtype=self.dtype)
        out.local_view[...] = np.asarray(m.sum(axis=1)).ravel()
        return out

    def norm_frobenius(self) -> float:
        self._require_filled()
        local = float((self.local_matrix.data ** 2).sum().real)
        return float(np.sqrt(self.row_map.comm.allreduce(local)))

    def norm_inf(self) -> float:
        local = float(self.row_sums().local.max()) if self.num_my_rows \
            else 0.0
        return float(self.row_map.comm.allreduce(local, op=MAX))

    # ------------------------------------------------------------------
    # modification after fill
    # ------------------------------------------------------------------
    def scale(self, alpha: float) -> "CrsMatrix":
        self._require_filled()
        self.local_matrix = self.local_matrix * alpha
        return self

    def left_scale(self, d: Vector) -> "CrsMatrix":
        """Row scaling: A <- diag(d) A, d on the row map."""
        self._require_filled()
        self.local_matrix = sp.diags(d.local_view) @ self.local_matrix
        return self

    def right_scale(self, d: Vector) -> "CrsMatrix":
        """Column scaling: A <- A diag(d), d on the domain map."""
        self._require_filled()
        d_col = self._import_columns(d.local)[:, 0]
        self.local_matrix = (self.local_matrix @ sp.diags(d_col)).tocsr()
        return self

    def replace_diagonal(self, d: Vector) -> "CrsMatrix":
        self._require_filled()
        lm = self.local_matrix.tolil()
        for lrow in range(self.num_my_rows):
            grow = self.row_map.gid(lrow)
            lcol = np.nonzero(self.col_map_gids == grow)[0]
            if len(lcol):
                lm[lrow, int(lcol[0])] = d.local_view[lrow]
        self.local_matrix = lm.tocsr()
        return self

    # ------------------------------------------------------------------
    # distributed matrix algebra
    # ------------------------------------------------------------------
    def transpose(self) -> "CrsMatrix":
        """Distributed transpose: entries shipped to the owners of their
        column index, which becomes the new row index.  Collective."""
        self._require_filled()
        comm = self.row_map.comm
        coo = self.local_matrix.tocoo()
        row_gids = self.row_map.my_gids[coo.row]
        col_gids = self.col_map_gids[coo.col]
        new_row_map = self.domain
        owners = new_row_map.owner_rank(col_gids)
        out = []
        for r in range(comm.size):
            mask = owners == r
            out.append((col_gids[mask], row_gids[mask], coo.data[mask]))
        incoming = comm.alltoall(out)
        at = CrsMatrix(new_row_map, dtype=self.dtype)
        for rows, cols, vals in incoming:
            for grow, gcol, v in zip(rows, cols, vals):
                at.insert_global_values(int(grow), [int(gcol)], [v])
        at.fillComplete(domain_map=self.range_map(),
                        range_map=new_row_map)
        return at

    def add(self, other: "CrsMatrix", alpha: float = 1.0,
            beta: float = 1.0) -> "CrsMatrix":
        """C = alpha*this + beta*other (matching row maps).  Collective."""
        self._require_filled()
        other._require_filled()
        if not self.row_map.locally_same_as(other.row_map):
            raise ValueError("matrix add needs identical row maps")
        out = CrsMatrix(self.row_map,
                        dtype=np.result_type(self.dtype, other.dtype))
        for m, scale in ((self, alpha), (other, beta)):
            coo = m.local_matrix.tocoo()
            for i, j, v in zip(coo.row, coo.col, coo.data):
                out.insert_global_values(
                    int(m.row_map.my_gids[int(i)]),
                    [int(m.col_map_gids[int(j)])], [scale * v])
        out.fillComplete(domain_map=self.domain_map(),
                         range_map=self.range_map())
        return out

    def __add__(self, other):
        if isinstance(other, CrsMatrix):
            return self.add(other)
        return NotImplemented

    def __sub__(self, other):
        if isinstance(other, CrsMatrix):
            return self.add(other, 1.0, -1.0)
        return NotImplemented

    def matmat(self, other: "CrsMatrix") -> "CrsMatrix":
        """C = A @ B for row-distributed B on A's domain map.  Each rank
        imports the B-rows matching its A-columns, multiplies locally.
        Collective."""
        self._require_filled()
        other._require_filled()
        comm = self.row_map.comm
        needed = self.col_map_gids
        # fetch the needed rows of B (gid, cols, vals triplets)
        owners = other.row_map.owner_rank(needed)
        asks = []
        for r in range(comm.size):
            asks.append(needed[owners == r])
        asked = comm.alltoall(asks)
        replies = []
        for gids in asked:
            batch = []
            for g in np.asarray(gids, dtype=np.int64):
                cols, vals = other.global_row(int(g))
                batch.append((int(g), cols, vals))
            replies.append(batch)
        got = comm.alltoall(replies)
        # build a local sparse B block: rows ordered like self.col_map_gids
        pos = {int(g): i for i, g in enumerate(needed)}
        rows_idx, cols_idx, vals = [], [], []
        for batch in got:
            for g, cols, values in batch:
                rows_idx.append(np.full(len(cols), pos[g], dtype=np.int64))
                cols_idx.append(np.asarray(cols, dtype=np.int64))
                vals.append(values)
        nbcols = other.domain_map().num_global
        if rows_idx:
            b_block = sp.coo_matrix(
                (np.concatenate(vals),
                 (np.concatenate(rows_idx), np.concatenate(cols_idx))),
                shape=(len(needed), nbcols)).tocsr()
        else:
            b_block = sp.csr_matrix((len(needed), nbcols))
        c_local = (self.local_matrix @ b_block).tocoo()
        c = CrsMatrix(self.row_map,
                      dtype=np.result_type(self.dtype, other.dtype))
        my_gids = self.row_map.my_gids
        for i, j, v in zip(c_local.row, c_local.col, c_local.data):
            c.insert_global_values(int(my_gids[i]), [int(j)], [v])
        c.fillComplete(domain_map=other.domain_map(),
                       range_map=self.range_map())
        return c

    # ------------------------------------------------------------------
    # gather / conversion (testing and direct solvers)
    # ------------------------------------------------------------------
    def to_scipy_global(self, root: Optional[int] = 0):
        """Gather the whole matrix as a scipy CSR on *root* (or on every
        rank when root is None).  Collective."""
        self._require_filled()
        comm = self.row_map.comm
        coo = self.local_matrix.tocoo()
        triplet = (self.row_map.my_gids[coo.row],
                   self.col_map_gids[coo.col], coo.data)
        pieces = comm.allgather(triplet) if root is None else \
            comm.gather(triplet, root=root)
        if pieces is None:
            return None
        rows = np.concatenate([p[0] for p in pieces]) if pieces else []
        cols = np.concatenate([p[1] for p in pieces]) if pieces else []
        data = np.concatenate([p[2] for p in pieces]) if pieces else []
        shape = (self.num_global_rows, self.num_global_cols)
        return sp.coo_matrix((data, (rows, cols)), shape=shape).tocsr()

    @classmethod
    def from_scipy(cls, matrix, row_map: Map,
                   domain_map: Optional[Map] = None) -> "CrsMatrix":
        """Distribute a (rank-replicated) scipy sparse matrix by row map."""
        matrix = sp.csr_matrix(matrix)
        out = cls(row_map, dtype=matrix.dtype)
        for gid in row_map.my_gids:
            sl = slice(matrix.indptr[gid], matrix.indptr[gid + 1])
            if sl.stop > sl.start:
                out.insert_global_values(int(gid), matrix.indices[sl],
                                         matrix.data[sl])
        out.fillComplete(domain_map=domain_map)
        return out

    def __repr__(self):
        state = "filled" if self._filled else "building"
        return (f"CrsMatrix({self.num_global_rows}x{self.num_global_cols}, "
                f"{state}, rank {self.row_map.comm.rank} holds "
                f"{self.num_my_rows} rows)")


class CrsGraph:
    """Structure-only sparse pattern (Tpetra::CrsGraph).

    Wraps the same machinery as :class:`CrsMatrix` with unit values; used
    by coloring/partitioning and to preallocate matrices with a fixed
    pattern.
    """

    def __init__(self, row_map: Map):
        self.row_map = row_map
        self._matrix = CrsMatrix(row_map, dtype=np.int8)

    def insert_global_indices(self, global_row: int, cols) -> None:
        self._matrix.insert_global_values(global_row, cols,
                                          np.ones(len(np.atleast_1d(cols)),
                                                  dtype=np.int8))

    def fillComplete(self, domain_map: Optional[Map] = None,
                     range_map: Optional[Map] = None) -> "CrsGraph":
        self._matrix.fillComplete(domain_map, range_map)
        return self

    @property
    def is_fill_complete(self) -> bool:
        return self._matrix.is_fill_complete

    def global_row_indices(self, global_row: int) -> np.ndarray:
        cols, _vals = self._matrix.global_row(global_row)
        return cols

    def num_global_entries(self) -> int:
        return self._matrix.num_global_nonzeros()

    @property
    def col_map_gids(self):
        return self._matrix.col_map_gids

    def matrix_with_values(self, dtype=np.float64) -> CrsMatrix:
        """A zero-valued CrsMatrix sharing this pattern."""
        out = CrsMatrix(self.row_map, dtype=dtype)
        out.domain = self._matrix.domain
        out.range = self._matrix.range
        out.col_map_gids = self._matrix.col_map_gids
        out.importer = self._matrix.importer
        lm = self._matrix.local_matrix
        out.local_matrix = sp.csr_matrix(
            (np.zeros(lm.nnz, dtype=dtype), lm.indices.copy(),
             lm.indptr.copy()), shape=lm.shape)
        out._filled = True
        out._build_rows = []
        return out
