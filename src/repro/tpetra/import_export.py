"""Data redistribution plans (Tpetra::Import / Tpetra::Export).

An :class:`Import` moves data from a source-distributed object to a
target-distributed object (the owners push to the requesters); an
:class:`Export` pushes possibly-overlapping contributions to the owners,
combining with ADD/INSERT/ABSMAX -- the assembly primitive.

Both are *plans*: the communication pattern (who sends which local ids to
whom) is computed once, collectively, at construction; executing the plan
then costs exactly one message per communicating pair.  ODIN's halo
exchanges and the CrsMatrix SpMV both execute Import plans.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

import numpy as np

from ..metrics import REGISTRY as _MX
from ..mpi.status import ANY_SOURCE, Status
from .map import Map

__all__ = ["CombineMode", "Import", "Export"]


class CombineMode(enum.Enum):
    """How incoming values merge with existing ones at the target."""

    INSERT = "insert"
    REPLACE = "replace"
    ADD = "add"
    ABSMAX = "absmax"


def _combine(target_local: np.ndarray, lids: np.ndarray,
             values: np.ndarray, mode: CombineMode) -> None:
    if mode in (CombineMode.INSERT, CombineMode.REPLACE):
        target_local[lids] = values
    elif mode == CombineMode.ADD:
        np.add.at(target_local, lids, values)
    elif mode == CombineMode.ABSMAX:
        current = np.abs(target_local[lids])
        incoming = np.abs(values)
        target_local[lids] = np.where(incoming > current, values,
                                      target_local[lids])
    else:  # pragma: no cover - enum is closed
        raise ValueError(mode)


class _Plan:
    """One-directional communication plan between two maps.

    ``send_plan``: list of (dest rank, source lids to send).
    ``recv_plan``: list of (src rank, target lids to fill, in arrival order).
    ``permute``: (source lids, target lids) moved locally.

    A plan is built once and executed many times (a Krylov SpMV executes
    the same Import every iteration), so execution state is cached on the
    instance: per-destination pack buffers are reused across ``execute``
    calls, and the transpose plan built by :meth:`reversed` is memoized.
    Plans are treated as immutable once built -- the lid arrays are shared,
    never copied, between a plan and its reverse.
    """

    def __init__(self, send_plan, recv_plan, permute_src, permute_tgt):
        self.send_plan: List[Tuple[int, np.ndarray]] = send_plan
        self.recv_plan: List[Tuple[int, np.ndarray]] = recv_plan
        self.permute_src = permute_src
        self.permute_tgt = permute_tgt
        self._reversed: "_Plan" = None
        self._send_bufs: Dict[int, np.ndarray] = {}
        # receives drained with ANY_SOURCE can overshoot into the *next*
        # execution's message from an already-satisfied peer (per-pair
        # FIFO still holds, so a stashed message is exactly that peer's
        # next-execution payload); consume the stash first next time
        self._stash: Dict[int, List[np.ndarray]] = {}
        # arrival-order combining is only deterministic when no two
        # sources write the same target lid (always true for Imports by
        # construction); otherwise stage and combine in plan order
        if len(recv_plan) > 1:
            all_lids = np.concatenate([lids for _r, lids in recv_plan])
            self._recv_disjoint = len(np.unique(all_lids)) == len(all_lids)
        else:
            self._recv_disjoint = True

    def _pack(self, dest: int, src_local: np.ndarray,
              lids: np.ndarray) -> np.ndarray:
        """Gather the outgoing rows into a reused per-destination buffer."""
        shape = (len(lids),) + src_local.shape[1:]
        buf = self._send_bufs.get(dest)
        if buf is None or buf.shape != shape or buf.dtype != src_local.dtype:
            buf = np.empty(shape, dtype=src_local.dtype)
            self._send_bufs[dest] = buf
        np.take(src_local, lids, axis=0, out=buf)
        return buf

    def execute(self, comm, src_local: np.ndarray, tgt_local: np.ndarray,
                mode: CombineMode, tag: int) -> None:
        """Move values according to the plan.

        ``src_local`` / ``tgt_local`` may be 1-D (Vector) or 2-D
        (MultiVector, rows = local elements).  All sends are posted
        before any receive is drained, and receives are drained in
        arrival order (late senders never block combining of data that
        has already arrived).  When the combine is order-sensitive
        (overlapping target lids under ADD/ABSMAX), incoming values are
        staged and combined in plan order so results stay deterministic.
        """
        mx = _MX.enabled
        for dest, lids in self.send_plan:
            packed = self._pack(dest, src_local, lids)
            if mx:
                _MX.inc("tpetra.plan.pack_bytes", packed.nbytes,
                        rank=comm.rank)
            comm.send(packed, dest, tag=tag)
        if len(self.permute_src):
            _combine(tgt_local, self.permute_tgt, src_local[self.permute_src],
                     mode)
        if not self.recv_plan:
            if mx:
                _MX.inc("tpetra.plan.executions", rank=comm.rank)
            return
        in_order = self._recv_disjoint or mode in (CombineMode.INSERT,
                                                   CombineMode.REPLACE)
        by_src = {src: lids for src, lids in self.recv_plan}
        staged: Dict[int, np.ndarray] = {}
        pending = set(by_src)
        while pending:
            src = next((s for s in pending if self._stash.get(s)), -1)
            if src >= 0:
                values = self._stash[src].pop(0)
            else:
                st = Status()
                values = comm.recv(ANY_SOURCE, tag=tag, status=st)
                src = st.source
                if src not in pending:
                    # next execution's message from a finished peer
                    self._stash.setdefault(src, []).append(values)
                    continue
            pending.discard(src)
            if mx:
                _MX.inc("tpetra.plan.unpack_bytes",
                        np.asarray(values).nbytes, rank=comm.rank)
            if in_order:
                _combine(tgt_local, by_src[src], values, mode)
            else:
                staged[src] = values
        if staged:
            for src, lids in self.recv_plan:
                _combine(tgt_local, lids, staged[src], mode)
        if mx:
            _MX.inc("tpetra.plan.executions", rank=comm.rank)

    def reversed(self) -> "_Plan":
        """The transpose plan (Import -> reverse Export and vice versa),
        built once on first use and cached; the reverse of the reverse is
        the original plan (no rebuild, no lid-array copies)."""
        if self._reversed is None:
            rev = _Plan(list(self.recv_plan), list(self.send_plan),
                        self.permute_tgt, self.permute_src)
            rev._reversed = self
            self._reversed = rev
            if _MX.enabled:
                _MX.inc("tpetra.plan.reverse_builds")
        return self._reversed

    @property
    def num_messages(self) -> int:
        return len(self.send_plan)

    @property
    def num_remote_elements(self) -> int:
        return sum(len(lids) for _r, lids in self.recv_plan)


def _build_import_plan(source: Map, target: Map) -> _Plan:
    """Collective plan construction: requesters ask owners.

    For every target gid, locate it in the source map.  Locally-available
    gids become the permute lists; remote ones are requested from their
    owners with one alltoall, after which the owners know what to ship.
    """
    comm = source.comm
    tgt_gids = target.my_gids
    src_lids = source.lid(tgt_gids)
    local_mask = src_lids >= 0
    permute_src = src_lids[local_mask]
    permute_tgt = np.nonzero(local_mask)[0].astype(np.int64)

    remote_tgt_lids = np.nonzero(~local_mask)[0].astype(np.int64)
    remote_gids = tgt_gids[~local_mask]
    # owner_rank is collective on arbitrary maps: call unconditionally.
    owners = source.owner_rank(remote_gids)
    if len(remote_gids) and np.any(owners == comm.rank):
        raise AssertionError("gid reported remote but owned locally")

    # Ask each owner for the gids we need (alltoall of request lists).
    requests = []
    recv_plan = []
    for r in range(comm.size):
        mask = owners == r
        requests.append(remote_gids[mask])
        if np.any(mask):
            recv_plan.append((r, remote_tgt_lids[mask]))
    asked = comm.alltoall(requests)
    send_plan = []
    for r, gids in enumerate(asked):
        if len(gids):
            lids = source.lid(np.asarray(gids, dtype=np.int64))
            if np.any(lids < 0):
                raise AssertionError("asked for gids this rank does not own")
            send_plan.append((r, lids))
    if _MX.enabled:
        _MX.inc("tpetra.plan.builds", rank=comm.rank, kind="import")
        _MX.inc("tpetra.plan.remote_lids_resolved", len(remote_gids),
                rank=comm.rank, kind="import")
    return _Plan(send_plan, recv_plan, permute_src, permute_tgt)


def _build_export_plan(source: Map, target: Map) -> _Plan:
    """Collective plan construction: contributors push to owners."""
    comm = source.comm
    src_gids = source.my_gids
    tgt_lids = target.lid(src_gids)
    local_mask = tgt_lids >= 0
    permute_src = np.nonzero(local_mask)[0].astype(np.int64)
    permute_tgt = tgt_lids[local_mask]

    remote_src_lids = np.nonzero(~local_mask)[0].astype(np.int64)
    remote_gids = src_gids[~local_mask]
    owners = target.owner_rank(remote_gids)

    send_plan = []
    announce = []
    for r in range(comm.size):
        mask = owners == r
        announce.append(remote_gids[mask])
        if np.any(mask):
            send_plan.append((r, remote_src_lids[mask]))
    incoming = comm.alltoall(announce)
    recv_plan = []
    for r, gids in enumerate(incoming):
        if len(gids):
            lids = target.lid(np.asarray(gids, dtype=np.int64))
            if np.any(lids < 0):
                raise AssertionError("received contribution for a gid this "
                                     "rank does not own")
            recv_plan.append((r, lids))
    if _MX.enabled:
        _MX.inc("tpetra.plan.builds", rank=comm.rank, kind="export")
        _MX.inc("tpetra.plan.remote_lids_resolved", len(remote_gids),
                rank=comm.rank, kind="export")
    return _Plan(send_plan, recv_plan, permute_src, permute_tgt)


# Every plan gets its own (forward, reverse) tag pair so the
# arrival-order ANY_SOURCE drain can never confuse two different plans'
# messages: with a unique tag, an overshoot can only be the *same* plan's
# next execution (per-pair FIFO), which the per-plan stash handles.  Ranks
# share class objects (threads), so the counter lives on the communicator
# (one instance per rank) and advances identically everywhere because plan
# construction is collective and in SPMD program order.
_PLAN_TAG_BASE = 7001


def _alloc_plan_tag(comm) -> int:
    nxt = getattr(comm, "_plan_tag_next", _PLAN_TAG_BASE)
    comm._plan_tag_next = nxt + 2
    return nxt


class Import:
    """Redistribution plan pulling source data into the target layout."""

    def __init__(self, source: Map, target: Map):
        if source.comm is not target.comm and \
                source.comm.size != target.comm.size:
            raise ValueError("source and target maps must share a comm")
        self.source = source
        self.target = target
        self.plan = _build_import_plan(source, target)
        self._tag = _alloc_plan_tag(source.comm)

    def apply(self, src_local: np.ndarray, tgt_local: np.ndarray,
              mode: CombineMode = CombineMode.INSERT) -> None:
        """Execute on raw local arrays (rows = local elements)."""
        self.plan.execute(self.source.comm, src_local, tgt_local, mode,
                          self._tag)

    def apply_reverse(self, tgt_local: np.ndarray, src_local: np.ndarray,
                      mode: CombineMode = CombineMode.ADD) -> None:
        """Run the plan backwards (a reverse-mode Export)."""
        self.plan.reversed().execute(self.source.comm, tgt_local, src_local,
                                     mode, self._tag + 1)

    @property
    def num_same(self) -> int:
        return len(self.plan.permute_src)

    @property
    def num_remote(self) -> int:
        return self.plan.num_remote_elements


class Export:
    """Redistribution plan pushing (possibly shared) contributions to owners."""

    def __init__(self, source: Map, target: Map):
        self.source = source
        self.target = target
        self.plan = _build_export_plan(source, target)
        self._tag = _alloc_plan_tag(source.comm)

    def apply(self, src_local: np.ndarray, tgt_local: np.ndarray,
              mode: CombineMode = CombineMode.ADD) -> None:
        self.plan.execute(self.source.comm, src_local, tgt_local, mode,
                          self._tag)

    def apply_reverse(self, tgt_local: np.ndarray, src_local: np.ndarray,
                      mode: CombineMode = CombineMode.INSERT) -> None:
        self.plan.reversed().execute(self.source.comm, tgt_local, src_local,
                                     mode, self._tag + 1)
