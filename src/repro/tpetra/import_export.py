"""Data redistribution plans (Tpetra::Import / Tpetra::Export).

An :class:`Import` moves data from a source-distributed object to a
target-distributed object (the owners push to the requesters); an
:class:`Export` pushes possibly-overlapping contributions to the owners,
combining with ADD/INSERT/ABSMAX -- the assembly primitive.

Both are *plans*: the communication pattern (who sends which local ids to
whom) is computed once, collectively, at construction; executing the plan
then costs exactly one message per communicating pair.  ODIN's halo
exchanges and the CrsMatrix SpMV both execute Import plans.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

import numpy as np

from ..metrics import REGISTRY as _MX
from .map import Map

__all__ = ["CombineMode", "Import", "Export"]


class CombineMode(enum.Enum):
    """How incoming values merge with existing ones at the target."""

    INSERT = "insert"
    REPLACE = "replace"
    ADD = "add"
    ABSMAX = "absmax"


def _combine(target_local: np.ndarray, lids: np.ndarray,
             values: np.ndarray, mode: CombineMode) -> None:
    if mode in (CombineMode.INSERT, CombineMode.REPLACE):
        target_local[lids] = values
    elif mode == CombineMode.ADD:
        np.add.at(target_local, lids, values)
    elif mode == CombineMode.ABSMAX:
        current = np.abs(target_local[lids])
        incoming = np.abs(values)
        target_local[lids] = np.where(incoming > current, values,
                                      target_local[lids])
    else:  # pragma: no cover - enum is closed
        raise ValueError(mode)


class _Plan:
    """One-directional communication plan between two maps.

    ``send_plan``: list of (dest rank, source lids to send).
    ``recv_plan``: list of (src rank, target lids to fill, in arrival order).
    ``permute``: (source lids, target lids) moved locally.
    """

    def __init__(self, send_plan, recv_plan, permute_src, permute_tgt):
        self.send_plan: List[Tuple[int, np.ndarray]] = send_plan
        self.recv_plan: List[Tuple[int, np.ndarray]] = recv_plan
        self.permute_src = permute_src
        self.permute_tgt = permute_tgt

    def execute(self, comm, src_local: np.ndarray, tgt_local: np.ndarray,
                mode: CombineMode, tag: int) -> None:
        """Move values according to the plan.

        ``src_local`` / ``tgt_local`` may be 1-D (Vector) or 2-D
        (MultiVector, rows = local elements).
        """
        mx = _MX.enabled
        for dest, lids in self.send_plan:
            packed = np.ascontiguousarray(src_local[lids])
            if mx:
                _MX.inc("tpetra.plan.pack_bytes", packed.nbytes,
                        rank=comm.rank)
            comm.send(packed, dest, tag=tag)
        if len(self.permute_src):
            _combine(tgt_local, self.permute_tgt, src_local[self.permute_src],
                     mode)
        for src, lids in self.recv_plan:
            values = comm.recv(src, tag=tag)
            if mx:
                _MX.inc("tpetra.plan.unpack_bytes",
                        np.asarray(values).nbytes, rank=comm.rank)
            _combine(tgt_local, lids, values, mode)
        if mx:
            _MX.inc("tpetra.plan.executions", rank=comm.rank)

    def reversed(self) -> "_Plan":
        """The transpose plan (Import -> reverse Export and vice versa)."""
        send = [(rank, lids.copy()) for rank, lids in self.recv_plan]
        recv = [(rank, lids.copy()) for rank, lids in self.send_plan]
        return _Plan(send, recv, self.permute_tgt.copy(),
                     self.permute_src.copy())

    @property
    def num_messages(self) -> int:
        return len(self.send_plan)

    @property
    def num_remote_elements(self) -> int:
        return sum(len(lids) for _r, lids in self.recv_plan)


def _build_import_plan(source: Map, target: Map) -> _Plan:
    """Collective plan construction: requesters ask owners.

    For every target gid, locate it in the source map.  Locally-available
    gids become the permute lists; remote ones are requested from their
    owners with one alltoall, after which the owners know what to ship.
    """
    comm = source.comm
    tgt_gids = target.my_gids
    src_lids = source.lid(tgt_gids)
    local_mask = src_lids >= 0
    permute_src = src_lids[local_mask]
    permute_tgt = np.nonzero(local_mask)[0].astype(np.int64)

    remote_tgt_lids = np.nonzero(~local_mask)[0].astype(np.int64)
    remote_gids = tgt_gids[~local_mask]
    # owner_rank is collective on arbitrary maps: call unconditionally.
    owners = source.owner_rank(remote_gids)
    if len(remote_gids) and np.any(owners == comm.rank):
        raise AssertionError("gid reported remote but owned locally")

    # Ask each owner for the gids we need (alltoall of request lists).
    requests = []
    recv_plan = []
    for r in range(comm.size):
        mask = owners == r
        requests.append(remote_gids[mask])
        if np.any(mask):
            recv_plan.append((r, remote_tgt_lids[mask]))
    asked = comm.alltoall(requests)
    send_plan = []
    for r, gids in enumerate(asked):
        if len(gids):
            lids = source.lid(np.asarray(gids, dtype=np.int64))
            if np.any(lids < 0):
                raise AssertionError("asked for gids this rank does not own")
            send_plan.append((r, lids))
    if _MX.enabled:
        _MX.inc("tpetra.plan.builds", rank=comm.rank, kind="import")
        _MX.inc("tpetra.plan.remote_lids_resolved", len(remote_gids),
                rank=comm.rank, kind="import")
    return _Plan(send_plan, recv_plan, permute_src, permute_tgt)


def _build_export_plan(source: Map, target: Map) -> _Plan:
    """Collective plan construction: contributors push to owners."""
    comm = source.comm
    src_gids = source.my_gids
    tgt_lids = target.lid(src_gids)
    local_mask = tgt_lids >= 0
    permute_src = np.nonzero(local_mask)[0].astype(np.int64)
    permute_tgt = tgt_lids[local_mask]

    remote_src_lids = np.nonzero(~local_mask)[0].astype(np.int64)
    remote_gids = src_gids[~local_mask]
    owners = target.owner_rank(remote_gids)

    send_plan = []
    announce = []
    for r in range(comm.size):
        mask = owners == r
        announce.append(remote_gids[mask])
        if np.any(mask):
            send_plan.append((r, remote_src_lids[mask]))
    incoming = comm.alltoall(announce)
    recv_plan = []
    for r, gids in enumerate(incoming):
        if len(gids):
            lids = target.lid(np.asarray(gids, dtype=np.int64))
            if np.any(lids < 0):
                raise AssertionError("received contribution for a gid this "
                                     "rank does not own")
            recv_plan.append((r, lids))
    if _MX.enabled:
        _MX.inc("tpetra.plan.builds", rank=comm.rank, kind="export")
        _MX.inc("tpetra.plan.remote_lids_resolved", len(remote_gids),
                rank=comm.rank, kind="export")
    return _Plan(send_plan, recv_plan, permute_src, permute_tgt)


# Fixed tags for plan execution.  Ranks share class objects (threads), so a
# class-level counter would diverge across ranks; a constant tag is safe
# because per-pair FIFO delivery plus SPMD program order keeps successive
# plan executions from cross-matching.
_IMPORT_TAG = 7001
_IMPORT_REV_TAG = 7002
_EXPORT_TAG = 7003
_EXPORT_REV_TAG = 7004


class Import:
    """Redistribution plan pulling source data into the target layout."""

    def __init__(self, source: Map, target: Map):
        if source.comm is not target.comm and \
                source.comm.size != target.comm.size:
            raise ValueError("source and target maps must share a comm")
        self.source = source
        self.target = target
        self.plan = _build_import_plan(source, target)
        self._tag = _IMPORT_TAG

    def apply(self, src_local: np.ndarray, tgt_local: np.ndarray,
              mode: CombineMode = CombineMode.INSERT) -> None:
        """Execute on raw local arrays (rows = local elements)."""
        self.plan.execute(self.source.comm, src_local, tgt_local, mode,
                          self._tag)

    def apply_reverse(self, tgt_local: np.ndarray, src_local: np.ndarray,
                      mode: CombineMode = CombineMode.ADD) -> None:
        """Run the plan backwards (a reverse-mode Export)."""
        self.plan.reversed().execute(self.source.comm, tgt_local, src_local,
                                     mode, self._tag + 1)

    @property
    def num_same(self) -> int:
        return len(self.plan.permute_src)

    @property
    def num_remote(self) -> int:
        return self.plan.num_remote_elements


class Export:
    """Redistribution plan pushing (possibly shared) contributions to owners."""

    def __init__(self, source: Map, target: Map):
        self.source = source
        self.target = target
        self.plan = _build_export_plan(source, target)
        self._tag = _EXPORT_TAG

    def apply(self, src_local: np.ndarray, tgt_local: np.ndarray,
              mode: CombineMode = CombineMode.ADD) -> None:
        self.plan.execute(self.source.comm, src_local, tgt_local, mode,
                          self._tag)

    def apply_reverse(self, tgt_local: np.ndarray, src_local: np.ndarray,
                      mode: CombineMode = CombineMode.INSERT) -> None:
        self.plan.reversed().execute(self.source.comm, tgt_local, src_local,
                                     mode, self._tag + 1)
