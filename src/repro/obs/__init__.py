"""Live observability: causal op tracing, flight recorder, status
endpoint, sampling profiler.

Post-mortem tooling (``repro.trace``, ``repro.metrics``) answers "what
happened"; this package answers "what is happening *right now*, and
which driver op caused it":

- :mod:`repro.obs.causal` -- the (op_id, epoch_id) identity every
  control op carries from the ODIN driver to worker spans, metrics and
  tagged collective counters.
- :mod:`repro.obs.flight` -- :data:`FLIGHT`, the always-on bounded
  ring of recent events, auto-dumped on faults as analyzer-loadable
  Chrome trace JSON.
- :mod:`repro.obs.server` -- :func:`serve`, the opt-in HTTP endpoint
  (``/metrics``, ``/status``, ``/flight``, ``/profile``); also started
  automatically when ``REPRO_OBS_PORT`` is set.
- :mod:`repro.obs.profiler` -- ``sys._current_frames`` stack sampling
  into flame-graph-ready folded stacks.

Quickstart::

    import repro.obs as obs
    srv = obs.serve(port=9100)          # or REPRO_OBS_PORT=9100
    # ... run the workload; from another terminal:
    #   python -m repro.obs status --port 9100
    #   curl localhost:9100/metrics

The heavy pieces (HTTP server, profiler) import lazily; importing this
package costs only the causal/flight/status modules, which are
stdlib + repro.trace.
"""

from __future__ import annotations

from . import causal  # noqa: F401  (re-exported submodule)
from . import status  # noqa: F401
from .flight import FLIGHT, FlightRecorder  # noqa: F401

__all__ = ["FLIGHT", "FlightRecorder", "causal", "status", "serve",
           "serve_shutdown"]


def serve(port: int = 0, host: str = "127.0.0.1"):
    """Start the runtime status endpoint; returns an ``ObsServer``."""
    from .server import serve as _serve
    return _serve(port=port, host=host)


def serve_shutdown() -> None:
    """Stop the endpoint started by :func:`serve` (mainly for tests)."""
    from .server import shutdown as _shutdown
    _shutdown()
