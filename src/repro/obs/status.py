"""Live status registry: what is every context doing *right now*?

:class:`~repro.odin.context.OdinContext` registers itself here (weakly,
so shut-down contexts vanish with their last handle) and
:func:`snapshot` assembles the ``/status`` document the HTTP endpoint
serves: per-context op/epoch clocks, checkpoint and plan-cache state,
and the per-rank pending-op + heartbeat evidence the ``DeadlockError``
watchdog prints -- but on demand, from a live (or hung) process.

Everything here is read-only and communication-free by contract: a
status query must succeed even when the control plane is wedged
mid-collective, so nothing in this module (or in the ``status()``
methods it calls) takes the context lock or touches a mailbox.
"""

from __future__ import annotations

import os
import time
import weakref
from typing import Any, Dict, List

__all__ = ["register_context", "contexts", "snapshot", "maybe_autoserve"]

_contexts: "weakref.WeakSet" = weakref.WeakSet()
_autoserve_checked = False


def register_context(ctx) -> None:
    """Track a live OdinContext for ``/status`` (weakly referenced)."""
    _contexts.add(ctx)
    maybe_autoserve()


def contexts() -> List[Any]:
    return list(_contexts)


def snapshot() -> Dict[str, Any]:
    """The ``/status`` document: every live context's read-only state."""
    out: Dict[str, Any] = {
        "producer": "repro.obs",
        "pid": os.getpid(),
        "time_unix_s": time.time(),
        "contexts": [],
    }
    for ctx in list(_contexts):
        try:
            out["contexts"].append(ctx.status())
        except Exception as exc:  # noqa: BLE001 - a dying context must
            # not take the endpoint down with it
            out["contexts"].append({"error": repr(exc)})
    return out


def maybe_autoserve():
    """Start the status server once iff ``REPRO_OBS_PORT`` is set.

    Called on every context registration; the first call decides.  A
    busy port or a bad value disables autoserve rather than breaking
    the workload -- observability must never crash the computation.
    """
    global _autoserve_checked
    if _autoserve_checked:
        return None
    _autoserve_checked = True
    raw = os.environ.get("REPRO_OBS_PORT", "").strip()
    if not raw:
        return None
    from .server import serve
    try:
        return serve(port=int(raw))
    except (ValueError, OSError):
        return None
