"""Always-on crash flight recorder.

A per-thread bounded ring of recent span/instant events, recorded at a
handful of coarse-grained sites (driver control ops, worker op
execution, MPI collectives, fault notifications) even when full tracing
is disabled.  When something dies -- ``AbortError``, ``RankFailure``,
``DeadlockError``, ``InjectedFault`` -- the rings are dumped as the
same Chrome ``trace_event`` JSON :func:`repro.trace.export
.write_chrome_trace` produces, so the post-mortem analyzer
(:func:`repro.trace.analyze.load_chrome_trace`) reads a crash dump and
a deliberate trace identically.

Design constraints, mirroring :class:`repro.trace.tracer.Tracer`:

- **Disabled cost is one predicate per site** (``if FLIGHT.enabled:``).
- **No locks and no buffer growth on the hot path.**  Each thread owns
  a preallocated ring (registered once, under a lock, on first use);
  an append is an index store plus a bump.  Event tuples share the
  tracer's ``(ph, cat, name, rank, ts, dur, args)`` shape and its
  clock epoch, so flight events and trace spans line up on one
  timeline.
- **Bounded memory always**: capacity defaults to 4096 events per
  thread (``REPRO_OBS_FLIGHT=N`` overrides; ``0``/``off`` disables the
  recorder entirely).

Dumps are rate-limited (at most one per second) so a fault storm -- a
chaos sweep injecting hundreds of crashes -- costs bounded I/O, and
they never print: the chaos CLI's byte-identical-replay contract owns
stdout.  ``REPRO_OBS_DUMP`` fixes the dump path (``0``/``off``
suppresses auto-dumps); the default is
``$TMPDIR/repro-flight-<pid>.json``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from ..trace.tracer import TRACER as _TR
from ..trace.tracer import Event, RankLabel
from . import causal as _CZ

__all__ = ["FlightRecorder", "FLIGHT"]

_DEFAULT_CAPACITY = 4096


def _env_capacity() -> int:
    raw = os.environ.get("REPRO_OBS_FLIGHT", "").strip().lower()
    if raw in ("0", "off", "no", "false", "none"):
        return 0
    try:
        return int(raw) if raw else _DEFAULT_CAPACITY
    except ValueError:
        return _DEFAULT_CAPACITY


class _Ring:
    """One thread's preallocated event ring."""

    __slots__ = ("slots", "pos", "full")

    def __init__(self, capacity: int):
        self.slots: List[Optional[Event]] = [None] * capacity
        self.pos = 0
        self.full = False


class FlightRecorder:
    """Per-thread bounded rings of recent events, dumpable on faults."""

    def __init__(self, capacity: Optional[int] = None,
                 min_dump_interval: float = 1.0):
        cap = _env_capacity() if capacity is None else int(capacity)
        self.capacity = max(cap, 0)
        self.enabled = self.capacity > 0
        self._lock = threading.Lock()
        self._rings: List[_Ring] = []
        self._tls = threading.local()
        self._min_dump_interval = float(min_dump_interval)
        self._last_dump_t = -float("inf")  # monotonic clock
        #: Path of the most recent dump (None until the first one).
        self.last_dump_path: Optional[str] = None
        #: ``{"kind", "detail", "op_id", "epoch_id", "ranks"}`` of the
        #: most recent fault notification; the chaos CLI embeds it in
        #: ``--repro-out`` artifacts so shrunk repros are self-describing.
        self.last_fault: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # recording (hot path)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Timestamp on the shared tracer clock (seconds since epoch)."""
        return time.perf_counter() - _TR._epoch

    def _ring(self) -> _Ring:
        ring = getattr(self._tls, "ring", None)
        if ring is None:
            ring = _Ring(self.capacity)
            self._tls.ring = ring
            with self._lock:
                self._rings.append(ring)
        return ring

    def complete(self, cat: str, name: str, rank: RankLabel, t0: float,
                 **args) -> None:
        """Append one span event that began at ``t0 = FLIGHT.now()``."""
        if not self.enabled:
            return
        ts = time.perf_counter() - _TR._epoch
        ring = self._ring()
        i = ring.pos
        ring.slots[i] = ("X", cat, name, rank, t0, ts - t0, args or None)
        i += 1
        if i >= self.capacity:
            i = 0
            ring.full = True
        ring.pos = i

    def instant(self, cat: str, name: str,
                rank: Optional[RankLabel] = None, **args) -> None:
        """Append one zero-duration marker event."""
        if not self.enabled:
            return
        ts = time.perf_counter() - _TR._epoch
        if rank is None:
            rank = _TR.thread_rank()
        ring = self._ring()
        i = ring.pos
        ring.slots[i] = ("i", cat, name, rank, ts, 0.0, args or None)
        i += 1
        if i >= self.capacity:
            i = 0
            ring.full = True
        ring.pos = i

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def events(self) -> List[Event]:
        """Surviving events, oldest first (the Tracer.events contract,
        so the Chrome exporter and the analyzer work unchanged).

        Readers race live writers benignly: with the GIL, each slot is
        replaced atomically, so the worst case is one event read twice
        or a fresh slot read as None (filtered out) -- acceptable for a
        crash dump, and the writer is never slowed down.
        """
        with self._lock:
            rings = list(self._rings)
        merged: List[Event] = []
        for ring in rings:
            slots, pos = ring.slots, ring.pos
            chunk = slots[pos:] + slots[:pos] if ring.full else slots[:pos]
            merged.extend(ev for ev in chunk if ev is not None)
        merged.sort(key=lambda ev: ev[4])
        return merged

    def clear(self) -> None:
        """Drop all recorded events (tests; keeps ring registration)."""
        with self._lock:
            for ring in self._rings:
                ring.slots = [None] * self.capacity
                ring.pos = 0
                ring.full = False
            self.last_fault = None

    def default_dump_path(self) -> Optional[str]:
        """``REPRO_OBS_DUMP`` if set (None if it disables dumping),
        else a pid-salted file in the temp directory."""
        raw = os.environ.get("REPRO_OBS_DUMP", "").strip()
        if raw.lower() in ("0", "off", "no", "false", "none"):
            return None
        if raw:
            return raw
        return os.path.join(tempfile.gettempdir(),
                            f"repro-flight-{os.getpid()}.json")

    def dump(self, path: Optional[str] = None) -> Optional[str]:
        """Write the rings as Chrome trace JSON; returns the path."""
        from ..trace.export import write_chrome_trace
        if path is None:
            path = self.default_dump_path()
            if path is None:
                return None
        write_chrome_trace(path, tracer=self)
        self.last_dump_path = path
        return path

    # ------------------------------------------------------------------
    # fault notification
    # ------------------------------------------------------------------
    def notify_fault(self, kind: str, detail: Optional[str] = None,
                     ranks: Optional[list] = None) -> Optional[str]:
        """Record a fault instant and auto-dump the rings (rate-limited).

        *ranks* is an optional per-rank ``World.status()``-style
        snapshot captured by the caller at the moment of the fault; it
        rides in :attr:`last_fault` so post-mortem artifacts carry the
        pending-op evidence even after the world is gone.  Returns the
        dump path (possibly from an earlier rate-limited dump), or
        ``None`` when the recorder or dumping is disabled.
        """
        if not self.enabled:
            return None
        oid, eid = _CZ.current()
        self.instant("obs.fault", kind, detail=detail, op_id=oid,
                     epoch_id=eid)
        self.last_fault = {
            "kind": kind,
            "detail": None if detail is None else str(detail),
            "op_id": oid,
            "epoch_id": eid,
            "ranks": ranks,
        }
        now = time.monotonic()
        with self._lock:
            throttled = now - self._last_dump_t < self._min_dump_interval
            if not throttled:
                self._last_dump_t = now
        if throttled:
            return self.last_dump_path
        try:
            return self.dump()
        except OSError:
            return None

    def __repr__(self):
        n = sum((r.full and self.capacity or r.pos) for r in self._rings)
        state = "enabled" if self.enabled else "disabled"
        return (f"FlightRecorder({state}, capacity={self.capacity}, "
                f"~{n} events, {len(self._rings)} rings)")


#: The process-wide singleton every instrumentation site references.
FLIGHT = FlightRecorder()
