"""Pretty-print a live process's observability endpoints.

Usage::

    python -m repro.obs status  --port 9100
    python -m repro.obs metrics --port 9100
    python -m repro.obs flight  --port 9100 --out flight.json
    python -m repro.obs profile --port 9100 --seconds 2 --out out.folded

``--port`` defaults to ``REPRO_OBS_PORT`` so the same environment
variable that switches the endpoint on in the workload also points
this CLI at it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import urllib.request
from collections import Counter


def _fetch(host: str, port: int, path: str, timeout: float = 10.0) -> str:
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def _render_status(doc: dict) -> str:
    lines = [f"pid {doc.get('pid')}: {len(doc.get('contexts', []))} "
             f"live context(s)"]
    for ctx in doc.get("contexts", []):
        if "error" in ctx:
            lines.append(f"  context error: {ctx['error']}")
            continue
        lines.append(
            f"  {ctx.get('kind', 'context')}: "
            f"{ctx.get('nworkers')} worker(s), "
            f"{'alive' if ctx.get('alive') else 'shut down'}, "
            f"op_id={ctx.get('op_id')} epoch_id={ctx.get('epoch_id')} "
            f"epoch_len={ctx.get('epoch_len')}"
            f"{' batching' if ctx.get('batching') else ''}"
            f"{' recover' if ctx.get('recover') else ''}")
        if ctx.get("recover"):
            lines.append(f"    ckpt version {ctx.get('ckpt_version')}, "
                         f"op-log length {ctx.get('oplog_len')}")
        plan = ctx.get("plan_cache")
        if plan:
            lines.append(f"    plan cache: {plan.get('hits')} hits / "
                         f"{plan.get('misses')} misses "
                         f"({plan.get('cached_plans')} cached)")
        for r in ctx.get("ranks", []):
            state = ("FAILED" if r.get("failed")
                     else r.get("pending") or "idle")
            seq = r.get("op_seq")
            seq_txt = f" [op #{seq}]" if seq is not None else ""
            lines.append(f"    rank {r.get('rank')}: {state}{seq_txt} "
                         f"(heartbeat {r.get('heartbeat_age_s')}s ago)")
    return "\n".join(lines)


def _render_flight(doc: dict) -> str:
    events = [e for e in doc.get("traceEvents", [])
              if e.get("ph") in ("X", "i")]
    by_cat = Counter(e.get("cat", "?") for e in events)
    lines = [f"flight recorder: {len(events)} event(s)"]
    for cat, n in by_cat.most_common():
        lines.append(f"  {cat:<16} {n}")
    fault = (doc.get("otherData") or {}).get("last_fault")
    if fault:
        lines.append(f"last fault: {fault.get('kind')} "
                     f"(op_id={fault.get('op_id')}) "
                     f"{fault.get('detail') or ''}".rstrip())
    lines.append("(use --out FILE to save the loadable trace JSON)")
    return "\n".join(lines)


def main(argv=None) -> int:
    env_port = os.environ.get("REPRO_OBS_PORT", "").strip()
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Query a live process's repro.obs status endpoint.")
    parser.add_argument("what",
                        choices=["status", "metrics", "flight", "profile"])
    parser.add_argument("--port", type=int,
                        default=int(env_port) if env_port.isdigit() else 0,
                        help="endpoint port (default: $REPRO_OBS_PORT)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--seconds", type=float, default=0.5,
                        help="profile sampling window (profile only)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the raw response to FILE")
    parser.add_argument("--raw", action="store_true",
                        help="print the raw response instead of the "
                             "pretty rendering")
    args = parser.parse_args(argv)
    if not args.port:
        parser.error("--port is required (or set REPRO_OBS_PORT)")

    path = {"status": "/status", "metrics": "/metrics",
            "flight": "/flight",
            "profile": f"/profile?seconds={args.seconds}"}[args.what]
    try:
        body = _fetch(args.host, args.port, path)
    except OSError as exc:
        print(f"error: cannot reach http://{args.host}:{args.port}{path}: "
              f"{exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(body)
        print(f"wrote {len(body)} bytes to {args.out}")
    if args.raw or args.what in ("metrics", "profile"):
        sys.stdout.write(body)
    elif args.what == "status":
        print(_render_status(json.loads(body)))
    elif args.what == "flight":
        print(_render_flight(json.loads(body)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
