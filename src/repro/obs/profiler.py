"""Sampling profiler: periodic stack capture of rank threads.

A daemon thread wakes every ``interval`` seconds, grabs
``sys._current_frames()``, and folds each thread's stack into a
``label;frame;frame...;frame count`` histogram -- the *folded stacks*
format ``flamegraph.pl`` and speedscope consume directly.  Threads
registered through :func:`repro.obs.causal.note_rank_thread` (worker
and SPMD ranks via ``RankContext.bind()``, the ODIN driver thread at
context creation) get their rank label as the stack root; other
threads fall back to their thread name.  The profiler's own thread and
the obs HTTP server threads are excluded.

Caveats (see docs/INTERNALS.md section 10): this samples *Python*
frames only -- time inside a NumPy kernel is charged to the Python line
that called it; the GIL means samples of CPU-bound threads are
statistically fair but a thread blocked in a C call without releasing
the GIL can shadow others; and at the default 5 ms interval a ~50 ms
op gets ~10 samples, so treat short runs as qualitative.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from typing import Optional

from . import causal as _CZ

__all__ = ["SamplingProfiler", "start", "stop", "running", "capture"]


class SamplingProfiler:
    """Aggregating stack sampler over all live threads."""

    def __init__(self, interval: float = 0.005, maxdepth: int = 64,
                 only_ranks: bool = False):
        self.interval = max(float(interval), 0.0005)
        self.maxdepth = int(maxdepth)
        #: When set, threads not registered as rank threads are skipped.
        self.only_ranks = bool(only_ranks)
        self.samples_taken = 0
        self._samples: "Counter[tuple]" = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler is already running")
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-obs-profiler",
                                        daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self) -> None:
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_once(self) -> None:
        """Take one sample of every eligible thread's stack."""
        frames = sys._current_frames()
        labels = _CZ.rank_threads()
        names = {t.ident: t.name for t in threading.enumerate()}
        me = threading.get_ident()
        own = self._thread.ident if self._thread is not None else None
        with self._lock:
            self.samples_taken += 1
            for ident, frame in frames.items():
                if ident in (me, own):
                    continue
                label = labels.get(ident)
                if label is None:
                    if self.only_ranks:
                        continue
                    label = names.get(ident, f"thread-{ident}")
                    if label.startswith("repro-obs"):
                        continue  # the server/profiler infrastructure
                stack = []
                f = frame
                while f is not None and len(stack) < self.maxdepth:
                    code = f.f_code
                    stack.append(f"{code.co_name} "
                                 f"({os.path.basename(code.co_filename)}"
                                 f":{f.f_lineno})")
                    f = f.f_back
                stack.reverse()  # root first, flamegraph convention
                self._samples[(label, tuple(stack))] += 1

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def folded(self) -> str:
        """Flame-graph-ready folded stacks (``a;b;c count`` lines)."""
        with self._lock:
            items = sorted(self._samples.items())
        lines = [";".join((label,) + stack) + f" {n}"
                 for (label, stack), n in items]
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self):
        state = "running" if self._thread is not None else "stopped"
        return (f"SamplingProfiler({state}, interval={self.interval}, "
                f"{self.samples_taken} samples)")


# ----------------------------------------------------------------------
# module-level global profiler (what the endpoint and --profile drive)
# ----------------------------------------------------------------------
_global: Optional[SamplingProfiler] = None
_global_lock = threading.Lock()


def start(interval: float = 0.005,
          only_ranks: bool = False) -> SamplingProfiler:
    """Start (or return) the process-wide background profiler."""
    global _global
    with _global_lock:
        if _global is None:
            _global = SamplingProfiler(interval=interval,
                                       only_ranks=only_ranks).start()
        return _global


def stop() -> str:
    """Stop the process-wide profiler; returns its folded stacks."""
    global _global
    with _global_lock:
        prof, _global = _global, None
    if prof is None:
        return ""
    prof.stop()
    return prof.folded()


def running() -> Optional[SamplingProfiler]:
    return _global


def capture(seconds: float = 0.5, interval: float = 0.005) -> str:
    """Folded stacks for a ``/profile`` request.

    If the global profiler is running, return its accumulated view
    immediately; otherwise sample with a temporary profiler for
    *seconds* (capped at 10 s so a typo cannot wedge the endpoint).
    """
    prof = _global
    if prof is not None:
        return prof.folded()
    seconds = min(max(float(seconds), 0.0), 10.0)
    prof = SamplingProfiler(interval=interval).start()
    try:
        time.sleep(max(seconds, prof.interval))
    finally:
        prof.stop()
    return prof.folded()
