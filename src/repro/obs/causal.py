"""Causal op identity: which control op is this thread working for?

The ODIN driver stamps every control-plane broadcast with a
monotonically increasing ``op_id`` (the broadcast sequence number) and
the ``epoch_id`` of the batching window it rides in.  Both ids travel
to the workers inside the :data:`~repro.odin.opcodes.TAGGED` wire
envelope, and both ends publish them here, thread-locally, for the
duration of the op.  Downstream instrumentation -- worker spans, the
flight recorder, the collective wrapper in :mod:`repro.mpi.comm` --
reads the current identity with one TLS lookup and attaches it to
whatever it records, which is what lets a byte on the wire be
attributed back to the driver call that caused it.

Propagation rules (documented in docs/INTERNALS.md section 10):

- The driver sets the identity immediately *before* broadcasting the
  tagged op, so the broadcast's own collective traffic is attributed to
  the op it carries.
- A worker sets the identity immediately *after* unwrapping the TAGGED
  envelope and leaves it set until the next envelope arrives.  The
  blocking wait for op N+1 is therefore attributed to op N (the "smear"
  -- deliberate: that wait is time the worker spent finishing/idling on
  behalf of op N's epoch), and the result gather for op N is correctly
  tagged N.
- Recovery replays re-broadcast ops under *fresh* ids, so replayed work
  is distinguishable from the original attempt while still agreeing
  between driver and workers.

This module also keeps the rank-thread registry the sampling profiler
uses to label stacks: :meth:`RankContext.bind()
<repro.mpi.runtime.RankContext.bind>` registers worker/SPMD threads as
``rank N`` and the ODIN driver registers its calling thread as
``driver``.  Stdlib-only on purpose -- everything in the runtime may
import it without cycles.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

__all__ = ["set_current", "current", "current_op_id", "clear_current",
           "note_rank_thread", "forget_rank_thread", "rank_threads"]


class _Causal(threading.local):
    op_id: Optional[int] = None
    epoch_id: Optional[int] = None


_tls = _Causal()

_registry_lock = threading.Lock()
_rank_threads: Dict[int, str] = {}  # thread ident -> label


def set_current(op_id: Optional[int], epoch_id: Optional[int]) -> None:
    """Publish the causal identity of the op this thread is executing."""
    _tls.op_id = op_id
    _tls.epoch_id = epoch_id


def current() -> Tuple[Optional[int], Optional[int]]:
    """The calling thread's ``(op_id, epoch_id)`` (None outside an op)."""
    return _tls.op_id, _tls.epoch_id


def current_op_id() -> Optional[int]:
    return _tls.op_id


def clear_current() -> None:
    _tls.op_id = None
    _tls.epoch_id = None


def note_rank_thread(label: str) -> None:
    """Register the calling thread under *label* for the profiler."""
    with _registry_lock:
        _rank_threads[threading.get_ident()] = str(label)


def forget_rank_thread() -> None:
    with _registry_lock:
        _rank_threads.pop(threading.get_ident(), None)


def rank_threads() -> Dict[int, str]:
    """Snapshot of registered rank threads: ``{thread ident: label}``."""
    with _registry_lock:
        return dict(_rank_threads)
