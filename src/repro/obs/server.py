"""The runtime status endpoint: a stdlib ``http.server`` thread.

Opt-in only (``obs.serve()`` or ``REPRO_OBS_PORT=N`` in the
environment); when on, a daemon :class:`ThreadingHTTPServer` exposes:

- ``/metrics`` -- the existing Prometheus text exposition of
  :data:`repro.metrics.REGISTRY` (scrape-ready).
- ``/status`` -- JSON: per-context op/epoch clocks, checkpoint and
  plan-cache state, and the per-rank pending-op + heartbeat-age table
  (the ``DeadlockError`` dump, on demand).  Read-only and
  communication-free, so it answers even when the workload is hung.
- ``/flight`` -- the flight-recorder rings as Chrome trace JSON (what
  :func:`repro.trace.analyze.load_chrome_trace` reads), plus the last
  fault notification under ``otherData``.
- ``/profile?seconds=S`` -- folded stacks from the sampling profiler
  (the running global one, or an on-demand S-second capture).

``python -m repro.obs <status|metrics|flight|profile>`` pretty-prints
any of these from another terminal.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

__all__ = ["ObsServer", "serve", "shutdown"]

_INDEX = """repro.obs endpoints:
  /metrics            Prometheus text exposition
  /status             per-context + per-rank runtime state (JSON)
  /flight             flight-recorder rings (Chrome trace JSON)
  /profile?seconds=S  folded stacks from the sampling profiler
"""


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1.0"

    def log_message(self, fmt, *args):  # noqa: D102 - no stderr chatter
        pass

    def do_GET(self):  # noqa: N802 - http.server API
        try:
            body, ctype = self._render()
        except Exception as exc:  # noqa: BLE001 - endpoint must not die
            self.send_error(500, explain=repr(exc))
            return
        if body is None:
            self.send_error(404)
            return
        data = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _render(self) -> Tuple[Optional[str], Optional[str]]:
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        if path == "/":
            return _INDEX, "text/plain; charset=utf-8"
        if path == "/metrics":
            from ..metrics import REGISTRY
            from ..metrics.report import exposition
            return exposition(REGISTRY), "text/plain; version=0.0.4"
        if path == "/status":
            from . import status
            return (json.dumps(status.snapshot(), indent=2, default=str)
                    + "\n", "application/json")
        if path == "/flight":
            from ..trace.export import chrome_trace_events
            from .flight import FLIGHT
            payload = {
                "traceEvents": chrome_trace_events(FLIGHT),
                "displayTimeUnit": "ms",
                "otherData": {"producer": "repro.obs.flight",
                              "last_fault": FLIGHT.last_fault},
            }
            return json.dumps(payload, default=str), "application/json"
        if path == "/profile":
            qs = parse_qs(parsed.query)
            try:
                seconds = float(qs.get("seconds", ["0.5"])[0])
            except ValueError:
                seconds = 0.5
            from . import profiler
            return profiler.capture(seconds), "text/plain; charset=utf-8"
        return None, None


class ObsServer:
    """Handle on the running endpoint thread."""

    def __init__(self, httpd: ThreadingHTTPServer,
                 thread: threading.Thread):
        self._httpd = httpd
        self._thread = thread

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __repr__(self):
        return f"ObsServer({self.url})"


_server: Optional[ObsServer] = None
_server_lock = threading.Lock()


def serve(port: int = 0, host: str = "127.0.0.1") -> ObsServer:
    """Start the status endpoint (idempotent: one server per process).

    ``port=0`` binds an ephemeral port; read it back from
    ``serve().port``.  The server thread and every handler thread are
    daemons, so a process exit is never held up by observability.
    """
    global _server
    with _server_lock:
        if _server is not None:
            return _server
        httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        httpd.daemon_threads = True
        thread = threading.Thread(target=httpd.serve_forever,
                                  name="repro-obs-server", daemon=True)
        thread.start()
        _server = ObsServer(httpd, thread)
        return _server


def shutdown() -> None:
    """Stop the endpoint (tests; a live process just leaves it up)."""
    global _server
    with _server_lock:
        srv, _server = _server, None
    if srv is not None:
        srv.close()
