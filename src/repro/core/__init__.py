"""repro.core -- the framework tying PyTrilinos, ODIN and Seamless together.

The paper's Discussion section describes the intended workflow: initialize
data with ODIN, solve with PyTrilinos solvers that call back to a Python
model, and compile the callback with Seamless "when the time comes to
solve one or more large problems".  :mod:`repro.core.framework` implements
that pipeline end to end; :func:`solve` is the high-level linear-solve
entry point used throughout the examples.
"""

from .framework import (PipelineReport, newton_krylov_pipeline, solve,
                        solve_odin)

__all__ = ["solve", "solve_odin", "newton_krylov_pipeline",
           "PipelineReport"]
