"""The full-framework pipeline (paper Discussion section, Fig. 2).

Three integration layers:

- :func:`solve` -- one-call distributed linear solve: matrix + rhs +
  ParameterList in, SolverResult out (inside an SPMD region).
- :func:`solve_odin` -- the same, driven from the ODIN global mode: ODIN
  arrays in, ODIN array out (re-exported from
  :mod:`repro.odin.trilinos`).
- :func:`newton_krylov_pipeline` -- the Discussion use case end to end: a
  nonlinear problem whose *model callback is a plain Python scalar kernel*,
  solved with NOX Newton-Krylov; pass ``compile_callback=True`` and the
  kernel is Seamless-JIT-compiled before the solve, exactly the "convert
  this callback into a highly efficient numerical kernel" step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .. import solvers, tpetra
from ..teuchos import ParameterList

__all__ = ["solve", "solve_odin", "newton_krylov_pipeline",
           "PipelineReport"]


def solve(A: tpetra.Operator, b: tpetra.Vector,
          params: Optional[ParameterList] = None) -> solvers.SolverResult:
    """Solve A x = b with solver and preconditioner chosen by parameters.

    Parameters (all optional)::

        ParameterList("Linear Solve")
            .set("Solver", "CG" | "GMRES" | "BICGSTAB" | "MINRES" |
                           "TFQMR" | "Direct" | "AMG")
            .set("Preconditioner", "None" | "Jacobi" | "GS" | "SGS" |
                                   "ILU" | "ILUT" | "Chebyshev" |
                                   "Schwarz" | "ML")
            .set("Tolerance", 1e-8).set("Max Iterations", 1000)
    """
    params = params if params is not None else ParameterList("Linear Solve")
    method = str(params.get("Solver", "GMRES")).upper()
    if method == "DIRECT":
        if not isinstance(A, tpetra.CrsMatrix):
            raise TypeError("direct solve needs an assembled CrsMatrix")
        x = solvers.create_solver(
            str(params.get("Direct Solver", "KLU")), A).solve(b)
        r = tpetra.Vector(b.map, dtype=b.dtype)
        A.apply(x, r)
        r.update(1.0, b, -1.0)
        rel = r.norm2() / (b.norm2() or 1.0)
        return solvers.SolverResult(x, True, 1, rel, [rel])
    prec_name = str(params.get("Preconditioner", "None"))
    prec = None
    if prec_name.upper() == "ML":
        prec = solvers.MLPreconditioner(A, params.sublist("ML"))
    elif prec_name.lower() not in ("none", ""):
        prec = solvers.create_preconditioner(prec_name, A,
                                             params.sublist("Ifpack"))
    if method == "AMG":
        ml = prec if isinstance(prec, solvers.MLPreconditioner) else \
            solvers.MLPreconditioner(A)
        return ml.solve(b, tol=float(params.get("Tolerance", 1e-8)),
                        maxiter=int(params.get("Max Iterations", 100)))
    aztec = ParameterList("AztecOO")
    aztec.set("Solver", method)
    aztec.set("Tolerance", float(params.get("Tolerance", 1e-8)))
    aztec.set("Max Iterations", int(params.get("Max Iterations", 1000)))
    if params.isParameter("Restart"):
        aztec.set("Restart", int(params.get("Restart", 30)))
    return solvers.AztecOO(A, prec=prec, params=aztec).iterate(b)


def solve_odin(matrix_name: str, b, **kwargs):
    """ODIN-facing linear solve (see :func:`repro.odin.trilinos.solve`)."""
    from ..odin import trilinos as odin_trilinos
    return odin_trilinos.solve(matrix_name, b, **kwargs)


@dataclass
class PipelineReport:
    """Outcome of the Discussion-section pipeline run."""

    converged: bool
    newton_iterations: int
    linear_iterations: int
    residual_norm: float
    callback_compiled: bool
    callback_time: float      # total seconds spent in model callbacks
    total_time: float

    def __repr__(self):
        mode = "Seamless-compiled" if self.callback_compiled else \
            "pure-Python"
        return (f"PipelineReport({mode} callback, "
                f"{self.newton_iterations} Newton its, "
                f"{self.linear_iterations} linear its, "
                f"callback {self.callback_time:.3f}s / "
                f"total {self.total_time:.3f}s)")


def newton_krylov_pipeline(comm, n: int,
                           model_kernel: Optional[Callable] = None,
                           lam: float = 1.0,
                           compile_callback: bool = False,
                           tol: float = 1e-10,
                           jacobian: str = "analytic") -> PipelineReport:
    """Run the paper's end-to-end use case inside an SPMD region.

    Solves the 1-D Bratu problem ``-u'' = lam * exp(u)`` on *n* interior
    points with Newton's method: the nonlinear residual evaluates a
    *per-element Python model kernel* -- by default ``f(u) = lam * e^u`` as
    an element-at-a-time loop, which is exactly the kind of callback the
    paper says to prototype in pure Python and then hand to Seamless.

    ``jacobian`` selects the linearization: ``"analytic"`` assembles the
    tridiagonal Jacobian and preconditions GMRES with its ILU(0) (robust
    at any size); ``"jfnk"`` uses Jacobian-free directional differences
    (fine for small n, the classic NOX matrix-free mode).

    With ``compile_callback=True`` the kernel loop is JIT-compiled via
    :func:`repro.seamless.jit` before the solve.
    """
    from ..galeri import laplace_1d

    h = 1.0 / (n + 1)
    A = laplace_1d(n, comm)
    kernel = model_kernel if model_kernel is not None else _bratu_kernel
    if compile_callback:
        from ..seamless import jit
        compiled = jit(kernel)
        # force compilation now so the solve measures steady-state speed
        warm = np.zeros(4)
        compiled(warm, np.zeros(4), lam)
        kernel_fn = compiled
        compiled_ok = getattr(compiled, "signatures", None)
        callback_compiled = bool(compiled_ok)
    else:
        kernel_fn = kernel
        callback_compiled = False

    callback_time = [0.0]

    def residual(u: tpetra.Vector) -> tpetra.Vector:
        # the discrete Bratu equations: A u - h^2 * lam * exp(u) = 0
        r = A @ u                       # distributed SpMV
        out = np.empty_like(u.local_view)
        t0 = time.perf_counter()
        kernel_fn(out, u.local_view, lam)   # the Python model callback
        callback_time[0] += time.perf_counter() - t0
        r.local_view[...] = r.local_view - h ** 2 * out
        return r

    jac_fn = None
    prec_factory = None
    if jacobian == "analytic":
        def jac_fn(u: tpetra.Vector) -> tpetra.CrsMatrix:
            # J = A - h^2 * lam * diag(exp(u)): reuse A's structure,
            # adjust the local diagonal entries in place
            J = tpetra.CrsMatrix(A.row_map, dtype=A.dtype)
            J.domain = A.domain_map()
            J.range = A.range_map()
            J.col_map_gids = A.col_map_gids
            J.importer = A.importer
            J._filled = True
            J._build_rows = []
            shift = h ** 2 * lam * np.exp(u.local_view)
            lm = A.local_matrix.tolil(copy=True)
            for lrow in range(J.num_my_rows):
                lm[lrow, lrow] -= shift[lrow]  # owned cols come first
            J.local_matrix = lm.tocsr()
            return J

        def prec_factory(u: tpetra.Vector):
            return solvers.ILU0(jac_fn(u))

    x0 = tpetra.Vector(A.domain_map())
    params = ParameterList("NOX")
    params.set("Nonlinear Tolerance", tol)
    params.set("Line Search", "Backtrack")
    t0 = time.perf_counter()
    result = solvers.NewtonSolver(residual, jacobian=jac_fn,
                                  prec_factory=prec_factory,
                                  params=params).solve(x0)
    total = time.perf_counter() - t0
    return PipelineReport(result.converged, result.iterations,
                          result.linear_iterations, result.residual_norm,
                          callback_compiled, callback_time[0], total)


def _bratu_kernel(out, u, lam):
    """The pure-Python model: f_i = lam * exp(u_i), element at a time."""
    for i in range(len(u)):
        out[i] = lam * exp(u[i])


# the kernel body uses a module-level exp so both the interpreter and the
# Seamless frontend resolve it
from math import exp  # noqa: E402
