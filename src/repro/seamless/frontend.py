"""Frontend: Python source -> Seamless IR.

Works from the AST of the decorated function's source (Seamless sits
*inside* the CPython interpreter -- paper section IV-A -- so the function
object itself hands us its source).  The supported subset is the numeric
kernel language: scalar arithmetic, 1-D array indexing, ``for i in
range(...)``, ``while``, ``if``, ``len``, and the C math library calls.

Anything outside the subset raises :class:`UnsupportedError`, which the
``@jit`` dispatcher turns into a graceful fallback to the original Python
function ("a staged and incremental approach").
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import List

from . import ir

__all__ = ["UnsupportedError", "function_to_ir", "source_to_ir"]


class UnsupportedError(TypeError):
    """The function uses Python features outside the Seamless subset."""


_BINOP_MAP = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
    ast.FloorDiv: "floordiv", ast.Mod: "mod", ast.Pow: "pow",
    ast.BitAnd: "bitand", ast.BitOr: "bitor", ast.BitXor: "bitxor",
    ast.LShift: "lshift", ast.RShift: "rshift",
}
_CMP_MAP = {
    ast.Lt: "lt", ast.LtE: "le", ast.Gt: "gt", ast.GtE: "ge",
    ast.Eq: "eq", ast.NotEq: "ne",
}
# math-module spellings accepted as bare or attribute calls
_CALL_ALIASES = {
    "sqrt": "sqrt", "exp": "exp", "log": "log", "log2": "log2",
    "log10": "log10", "sin": "sin", "cos": "cos", "tan": "tan",
    "arcsin": "asin", "asin": "asin", "arccos": "acos", "acos": "acos",
    "arctan": "atan", "atan": "atan", "sinh": "sinh", "cosh": "cosh",
    "tanh": "tanh", "floor": "floor", "ceil": "ceil", "fabs": "fabs",
    "abs": "abs", "absolute": "fabs", "pow": "pow", "atan2": "atan2",
    "arctan2": "atan2", "hypot": "hypot", "fmod": "fmod", "min": "min",
    "max": "max", "minimum": "min", "maximum": "max", "int": "int",
    "float": "float", "round": "round",
}


def function_to_ir(fn) -> ir.FunctionIR:
    """Parse a live function object into IR."""
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError) as exc:
        raise UnsupportedError(f"cannot retrieve source of {fn!r}: {exc}") \
            from None
    return source_to_ir(source, fn.__name__)


def source_to_ir(source: str, name: str = None) -> ir.FunctionIR:
    """Parse function source text (decorators are ignored) into IR."""
    tree = ast.parse(textwrap.dedent(source))
    fndefs = [n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
    if name is not None:
        fndefs = [n for n in fndefs if n.name == name] or fndefs
    if not fndefs:
        raise UnsupportedError("no function definition found in source")
    fndef = fndefs[0]
    if fndef.args.vararg or fndef.args.kwarg or fndef.args.kwonlyargs or \
            fndef.args.defaults:
        raise UnsupportedError("only plain positional parameters are "
                               "supported")
    arg_names = [a.arg for a in fndef.args.args]
    body = _stmts(fndef.body)
    return ir.FunctionIR(fndef.name, arg_names, body)


def _stmts(nodes) -> List[ir.Node]:
    out: List[ir.Node] = []
    for node in nodes:
        out.append(_stmt(node))
    return out


def _stmt(node) -> ir.Node:
    if isinstance(node, ast.Assign):
        if len(node.targets) != 1:
            raise UnsupportedError("chained assignment is not supported")
        target = node.targets[0]
        if isinstance(target, ast.Name):
            return ir.Assign(target.id, _expr(node.value))
        if isinstance(target, ast.Subscript):
            arr, idx, idx2 = _subscript_parts(target)
            return ir.StoreSub(arr, idx, _expr(node.value), index2=idx2)
        raise UnsupportedError(f"unsupported assignment target "
                               f"{ast.dump(target)}")
    if isinstance(node, ast.AugAssign):
        op = _BINOP_MAP.get(type(node.op))
        if op is None:
            raise UnsupportedError(f"unsupported augmented op {node.op}")
        if isinstance(node.target, ast.Name):
            return ir.Assign(node.target.id,
                             ir.BinOp(op, ir.Name(node.target.id),
                                      _expr(node.value)))
        if isinstance(node.target, ast.Subscript):
            arr, idx, idx2 = _subscript_parts(node.target)
            return ir.StoreSub(arr, idx,
                               ir.BinOp(op,
                                        ir.Subscript(arr, idx, index2=idx2),
                                        _expr(node.value)),
                               index2=idx2)
        raise UnsupportedError("unsupported augmented-assignment target")
    if isinstance(node, ast.For):
        if not isinstance(node.target, ast.Name):
            raise UnsupportedError("loop variable must be a name")
        if node.orelse:
            raise UnsupportedError("for-else is not supported")
        rng = node.iter
        if not (isinstance(rng, ast.Call) and isinstance(rng.func, ast.Name)
                and rng.func.id in ("range", "prange")):
            raise UnsupportedError("only `for i in range(...)` or "
                                   "`prange(...)` loops are supported")
        parallel = rng.func.id == "prange"
        args = [_expr(a) for a in rng.args]
        if len(args) == 1:
            start, stop, step = ir.Const(0), args[0], ir.Const(1)
        elif len(args) == 2:
            start, stop, step = args[0], args[1], ir.Const(1)
        elif len(args) == 3:
            start, stop, step = args
        else:
            raise UnsupportedError("range() takes 1-3 arguments")
        return ir.For(node.target.id, start, stop, step,
                      _stmts(node.body), parallel=parallel)
    if isinstance(node, ast.While):
        if node.orelse:
            raise UnsupportedError("while-else is not supported")
        return ir.While(_expr(node.test), _stmts(node.body))
    if isinstance(node, ast.If):
        return ir.If(_expr(node.test), _stmts(node.body),
                     _stmts(node.orelse))
    if isinstance(node, ast.Return):
        return ir.Return(_expr(node.value) if node.value is not None
                         else None)
    if isinstance(node, ast.Break):
        return ir.Break()
    if isinstance(node, ast.Continue):
        return ir.Continue()
    if isinstance(node, ast.Pass):
        return ir.If(ir.Const(False), [], [])
    if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
        # docstring or bare literal: drop
        return ir.If(ir.Const(False), [], [])
    raise UnsupportedError(f"unsupported statement {type(node).__name__}")


def _subscript_parts(node: ast.Subscript):
    """Returns (array_name, index, index2_or_None)."""
    if not isinstance(node.value, ast.Name):
        raise UnsupportedError("only direct array names can be indexed")
    if isinstance(node.slice, ast.Tuple):
        elts = node.slice.elts
        if len(elts) != 2:
            raise UnsupportedError("only 1-D and 2-D indexing is supported")
        return node.value.id, _expr(elts[0]), _expr(elts[1])
    return node.value.id, _expr(node.slice), None


def _expr(node) -> ir.Node:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (bool, int, float)):
            return ir.Const(node.value)
        raise UnsupportedError(f"unsupported constant {node.value!r}")
    if isinstance(node, ast.Name):
        return ir.Name(node.id)
    if isinstance(node, ast.BinOp):
        op = _BINOP_MAP.get(type(node.op))
        if op is None:
            raise UnsupportedError(f"unsupported operator {node.op}")
        return ir.BinOp(op, _expr(node.left), _expr(node.right))
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.USub):
            return ir.UnaryOp("neg", _expr(node.operand))
        if isinstance(node.op, ast.UAdd):
            return _expr(node.operand)
        if isinstance(node.op, ast.Not):
            return ir.UnaryOp("not", _expr(node.operand))
        raise UnsupportedError(f"unsupported unary op {node.op}")
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1:
            # a < b < c  ->  (a < b) and (b < c)
            parts = []
            left = node.left
            for op, comp in zip(node.ops, node.comparators):
                parts.append(ast.Compare(left=left, ops=[op],
                                         comparators=[comp]))
                left = comp
            return ir.BoolOp("and", [_expr(p) for p in parts])
        op = _CMP_MAP.get(type(node.ops[0]))
        if op is None:
            raise UnsupportedError(f"unsupported comparison {node.ops[0]}")
        return ir.Compare(op, _expr(node.left), _expr(node.comparators[0]))
    if isinstance(node, ast.BoolOp):
        op = "and" if isinstance(node.op, ast.And) else "or"
        return ir.BoolOp(op, [_expr(v) for v in node.values])
    if isinstance(node, ast.Call):
        return _call(node)
    if isinstance(node, ast.Subscript):
        # x.shape[k] -> ShapeOf
        if isinstance(node.value, ast.Attribute) and \
                node.value.attr == "shape" and \
                isinstance(node.value.value, ast.Name) and \
                isinstance(node.slice, ast.Constant):
            return ir.ShapeOf(node.value.value.id, int(node.slice.value))
        arr, idx, idx2 = _subscript_parts(node)
        return ir.Subscript(arr, idx, index2=idx2)
    if isinstance(node, ast.IfExp):
        return ir.IfExp(_expr(node.test), _expr(node.body),
                        _expr(node.orelse))
    if isinstance(node, ast.Attribute):
        # math.pi / np.e style named constants
        const = _NAMED_CONSTANTS.get(node.attr)
        if const is not None:
            return ir.Const(const)
        raise UnsupportedError(f"unsupported attribute {node.attr!r}")
    raise UnsupportedError(f"unsupported expression {type(node).__name__}")


import math as _math  # noqa: E402

_NAMED_CONSTANTS = {
    "pi": _math.pi,
    "e": _math.e,
    "tau": _math.tau,
    "inf": _math.inf,
}


def _call(node: ast.Call) -> ir.Node:
    if node.keywords:
        raise UnsupportedError("keyword arguments in calls are not "
                               "supported")
    if isinstance(node.func, ast.Name):
        fname = node.func.id
    elif isinstance(node.func, ast.Attribute):
        # math.sqrt, np.sqrt, numpy.sin ...
        fname = node.func.attr
    else:
        raise UnsupportedError("unsupported call target")
    if fname == "len":
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Name):
            raise UnsupportedError("len() takes one array argument")
        return ir.LenOf(node.args[0].id)
    if fname in ("range", "prange"):
        raise UnsupportedError(f"{fname}() only appears as a for-loop "
                               f"iterator")
    canonical = _CALL_ALIASES.get(fname)
    if canonical is None:
        if not isinstance(node.func, ast.Name):
            # obj.method(...) has no compilable meaning; only bare names
            # can resolve to user functions in the caller's globals
            raise UnsupportedError(f"unsupported method/attribute call "
                                   f"{fname!r}")
        # defer to inference, which resolves the name against the
        # function's globals (other @jit functions, plain helpers)
        return ir.UserCall(fname, [_expr(a) for a in node.args])
    return ir.Call(canonical, [_expr(a) for a in node.args])
