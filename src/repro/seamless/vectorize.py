"""The ``@elementwise`` decorator: NumPy-centric JIT (paper section IV-A).

Seamless is "specifically [a] NumPy-centric" JIT: ``@elementwise`` takes a
*scalar* Python function and compiles it into a native ufunc-like kernel
applied elementwise over arrays, with NumPy broadcasting of scalars::

    from repro.seamless import elementwise

    @elementwise
    def damped(x, k):
        return exp(-k * x) * sin(x)

    damped(np.linspace(0, 10, 1_000_000), 0.3)   # one compiled C loop

Without a C compiler the decorator falls back to ``numpy.vectorize``
semantics via direct NumPy evaluation of the scalar function (which works
whenever the function body is ufunc-composable) or, failing that, a Python
loop.
"""

from __future__ import annotations

import ctypes
import functools
import threading
import time
from typing import Callable, Optional

import numpy as np

from ..metrics import REGISTRY as _MX
from .backend_c import (_PRELUDE, compile_c_source, compiler_available,
                        emit_c)
from .frontend import UnsupportedError, function_to_ir
from .infer import infer
from .stypes import FLOAT64

__all__ = ["elementwise", "ElementwiseKernel"]


class ElementwiseKernel:
    """Compiled elementwise application of a scalar function."""

    def __init__(self, fn: Callable):
        self.py_func = fn
        self._lock = threading.Lock()
        self._native = None
        self._native_failed = False
        functools.update_wrapper(self, fn)

    # -- compilation -----------------------------------------------------
    def _build_native(self):
        fir = function_to_ir(self.py_func)
        nargs = len(fir.arg_names)
        tf = infer(fir, [FLOAT64] * nargs)
        if tf.return_type != FLOAT64 and tf.return_type.np_dtype is None:
            raise UnsupportedError("elementwise functions must return a "
                                   "scalar")
        scalar_symbol = f"ew_{fir.name}"
        scalar_src = emit_c(tf, scalar_symbol)[len(_PRELUDE):]
        scalar_src = scalar_src.replace(
            f"double {scalar_symbol}(", f"static double {scalar_symbol}(",
            1).replace(
            f"int64_t {scalar_symbol}(", f"static int64_t {scalar_symbol}(",
            1)
        params = ", ".join(
            ["double* out", "int64_t n"]
            + [f"const double* a{k}, int64_t s{k}" for k in range(nargs)])
        call = ", ".join(f"a{k}[i * s{k}]" for k in range(nargs))
        loop = f"""
void {scalar_symbol}_loop({params})
{{
    for (int64_t i = 0; i < n; ++i) {{
        out[i] = (double){scalar_symbol}({call});
    }}
}}
"""
        lib = compile_c_source(_PRELUDE + scalar_src + loop,
                               tag=f"ew_{fir.name}")
        cfn = getattr(lib, f"{scalar_symbol}_loop")
        ptr = np.ctypeslib.ndpointer(dtype=np.float64, ndim=1,
                                     flags="C_CONTIGUOUS")
        cfn.argtypes = [ptr, ctypes.c_int64] + \
            [ptr, ctypes.c_int64] * nargs
        cfn.restype = None
        return cfn, nargs

    def _get_native(self):
        if self._native is None and not self._native_failed:
            with self._lock:
                if self._native is None and not self._native_failed:
                    t0 = time.perf_counter()
                    try:
                        self._native = self._build_native()
                    except Exception:
                        self._native_failed = True
                    if _MX.enabled:
                        _MX.observe("seamless.vectorize.compile_seconds",
                                    time.perf_counter() - t0,
                                    kernel=self.py_func.__name__)
        return self._native

    # -- call --------------------------------------------------------------
    def __call__(self, *args):
        arrays = [a for a in args if isinstance(a, np.ndarray)]
        if not arrays:
            return self.py_func(*args)
        native = self._get_native() if compiler_available() else None
        if _MX.enabled:
            _MX.inc("seamless.vectorize.dispatch",
                    kernel=self.py_func.__name__,
                    path="native" if native is not None else "fallback")
        if native is None:
            return self._fallback(*args)
        cfn, nargs = native
        if len(args) != nargs:
            raise TypeError(f"{self.py_func.__name__} takes {nargs} "
                            f"arguments")
        shape = np.broadcast_shapes(*(a.shape for a in arrays))
        n = int(np.prod(shape)) if shape else 1
        c_args = []
        keepalive = []
        for a in args:
            if isinstance(a, np.ndarray):
                if a.shape not in ((), shape):
                    a = np.broadcast_to(a, shape)
                flat = np.ascontiguousarray(a, dtype=np.float64).reshape(-1)
                keepalive.append(flat)
                c_args.extend([flat, 1 if flat.size > 1 else 0])
            else:
                buf = np.array([float(a)])
                keepalive.append(buf)
                c_args.extend([buf, 0])
        out = np.empty(n, dtype=np.float64)
        cfn(out, n, *c_args)
        return out.reshape(shape)

    def _fallback(self, *args):
        """NumPy-vectorized fallback: the scalar body evaluated with array
        arguments works for ufunc-composable functions; otherwise loop."""
        try:
            return np.asarray(self.py_func(*args), dtype=np.float64)
        except Exception:
            vec = np.vectorize(self.py_func, otypes=[np.float64])
            return vec(*args)

    @property
    def compiled(self) -> bool:
        return self._get_native() is not None

    def __repr__(self):
        state = "native" if self._native else "fallback"
        return f"ElementwiseKernel({self.py_func.__name__}, {state})"


def elementwise(fn: Callable) -> ElementwiseKernel:
    """Compile a scalar function into an elementwise array kernel."""
    return ElementwiseKernel(fn)
