"""The ``seamless`` command line utility (paper section IV-B).

"One would use the seamless command line utility to generate the extension
module."

::

    seamless build kernels.py --function sum:float64[] --function dot:float64[],float64[]
    seamless export-cpp kernels.py --function sum:float64[] -o out/
    seamless inspect kernels.py --function sum:float64[]
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Sequence


def _parse_function_specs(specs: List[str]) -> Dict[str, Sequence[str]]:
    out: Dict[str, Sequence[str]] = {}
    for spec in specs:
        if ":" in spec:
            name, types = spec.split(":", 1)
            out[name] = [t for t in types.split(",") if t]
        else:
            out[spec] = []
    if not out:
        raise SystemExit("at least one --function is required")
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="seamless",
        description="Seamless static compiler and export tool")
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser(
        "build", help="statically compile functions to a .so + wrapper")
    p_build.add_argument("source", help="Python source file")
    p_build.add_argument("--function", "-f", action="append", default=[],
                         help="NAME or NAME:type1,type2 (repeatable)")
    p_build.add_argument("--out-dir", "-o", default=None)
    p_build.add_argument("--name", default=None, help="module name")

    p_export = sub.add_parser(
        "export-cpp", help="export functions as a C++ header + library")
    p_export.add_argument("source")
    p_export.add_argument("--function", "-f", action="append", default=[])
    p_export.add_argument("--out-dir", "-o", required=True)
    p_export.add_argument("--name", default="seamless_export")
    p_export.add_argument("--namespace", default="numpy")

    p_inspect = sub.add_parser(
        "inspect", help="print the generated C for a function")
    p_inspect.add_argument("source")
    p_inspect.add_argument("--function", "-f", action="append", default=[])

    args = parser.parse_args(argv)

    if args.command == "build":
        from .static import build_module
        functions = _parse_function_specs(args.function)
        wrapper = build_module(args.source, functions,
                               out_dir=args.out_dir,
                               module_name=args.name)
        print(f"wrote {wrapper}")
        return 0

    if args.command == "export-cpp":
        from .cpp_export import export_cpp
        functions = _parse_function_specs(args.function)
        with open(args.source, encoding="utf-8") as fh:
            source = fh.read()
        paths = export_cpp(source, functions, args.out_dir,
                           name=args.name, namespace=args.namespace)
        for kind, path in paths.items():
            print(f"{kind}: {path}")
        return 0

    if args.command == "inspect":
        from .static import compile_source
        functions = _parse_function_specs(args.function)
        with open(args.source, encoding="utf-8") as fh:
            source = fh.read()
        c_source, _statics = compile_source(source, functions)
        print(c_source)
        return 0

    return 1


if __name__ == "__main__":
    sys.exit(main())
