"""Fused elementwise kernels for ODIN (the Fig. 2 ODIN->Seamless edge).

:func:`compile_elementwise` turns an ODIN postfix expression program into
one C loop over float64 blocks -- genuine loop fusion: a chain like
``sqrt(u*u + v*v) * 2 - 1`` becomes a single pass with no temporaries.
"""

from __future__ import annotations

import ctypes
import time
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..metrics import REGISTRY as _MX
from .backend_c import _PRELUDE, compile_c_source, compiler_available

__all__ = ["compile_elementwise", "elementwise_c_source"]

_UNARY_C = {
    "negative": "(-({x}))", "absolute": "fabs({x})", "abs": "fabs({x})",
    "sqrt": "sqrt({x})", "exp": "exp({x})", "log": "log({x})",
    "log2": "log2({x})", "log10": "log10({x})", "sin": "sin({x})",
    "cos": "cos({x})", "tan": "tan({x})", "arcsin": "asin({x})",
    "arccos": "acos({x})", "arctan": "atan({x})", "sinh": "sinh({x})",
    "cosh": "cosh({x})", "tanh": "tanh({x})", "floor": "floor({x})",
    "ceil": "ceil({x})", "rint": "rint({x})", "square": "(({x})*({x}))",
    "reciprocal": "(1.0/({x}))", "sign": "(({x})>0 ? 1.0 : (({x})<0 ? -1.0 : 0.0))",
}
_BINARY_C = {
    "add": "(({a})+({b}))", "subtract": "(({a})-({b}))",
    "multiply": "(({a})*({b}))", "divide": "(({a})/({b}))",
    "true_divide": "(({a})/({b}))", "power": "pow(({a}),({b}))",
    "mod": "__pyfmod(({a}),({b}))",
    "arctan2": "atan2(({a}),({b}))", "hypot": "hypot(({a}),({b}))",
    "maximum": "fmax(({a}),({b}))", "minimum": "fmin(({a}),({b}))",
    "fmax": "fmax(({a}),({b}))", "fmin": "fmin(({a}),({b}))",
}


def elementwise_c_source(program: Sequence[tuple], n_inputs: int,
                         symbol: str = "fused_kernel") -> str:
    """C source of the fused loop, or raise ValueError if the program uses
    an op without a C mapping."""
    stack = []
    tmp_count = 0
    body_exprs = []

    def fresh(expr: str) -> str:
        nonlocal tmp_count
        name = f"t{tmp_count}"
        tmp_count += 1
        body_exprs.append(f"double {name} = {expr};")
        return name

    for inst in program:
        tag = inst[0]
        if tag == "load":
            stack.append(f"in{inst[1]}[i]")
        elif tag == "const":
            stack.append(repr(float(inst[1])))
        elif tag == "unary":
            template = _UNARY_C.get(inst[1])
            if template is None:
                raise ValueError(f"no C mapping for unary {inst[1]!r}")
            stack.append(fresh(template.format(x=stack.pop())))
        elif tag == "binary":
            template = _BINARY_C.get(inst[1])
            if template is None:
                raise ValueError(f"no C mapping for binary {inst[1]!r}")
            b = stack.pop()
            a = stack.pop()
            stack.append(fresh(template.format(a=a, b=b)))
        else:
            raise ValueError(f"bad instruction {inst!r}")
    if len(stack) != 1:
        raise ValueError("malformed program")
    params = ", ".join(
        ["double* out", "int64_t n"]
        + [f"const double* in{k}" for k in range(n_inputs)])
    inner = "\n        ".join(body_exprs + [f"out[i] = {stack[0]};"])
    return (_PRELUDE + f"""
void {symbol}({params})
{{
    for (int64_t i = 0; i < n; ++i) {{
        {inner}
    }}
}}
""")


def compile_elementwise(program: Sequence[tuple],
                        n_inputs: int) -> Optional[Callable]:
    """Native fused kernel ``fn(out, *inputs)`` over contiguous float64
    1-D arrays, or None when no compiler is available."""
    if not compiler_available():
        if _MX.enabled:
            _MX.inc("seamless.elementwise.no_compiler")
        return None
    source = elementwise_c_source(tuple(program), n_inputs)
    t0 = time.perf_counter()
    lib = compile_c_source(source, tag="fused")
    if _MX.enabled:
        _MX.inc("seamless.elementwise.fused_kernels")
        _MX.observe("seamless.elementwise.compile_seconds",
                    time.perf_counter() - t0)
    fn = lib.fused_kernel
    ptr = np.ctypeslib.ndpointer(dtype=np.float64, ndim=1,
                                 flags="C_CONTIGUOUS")
    fn.argtypes = [ptr, ctypes.c_int64] + [ptr] * n_inputs
    fn.restype = None

    def kernel(out: np.ndarray, *inputs: np.ndarray) -> None:
        fn(out, out.shape[0], *inputs)

    return kernel
