"""Seamless intermediate representation.

A deliberately small typed AST, mirroring the staged pipeline the Numba
architecture documents (bytecode/AST -> IR -> type inference -> lowering):
the frontend builds these nodes untyped (``stype=None``), inference fills
in ``stype``, and each backend lowers the typed tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .stypes import SType

__all__ = ["Node", "Const", "Name", "BinOp", "UnaryOp", "Compare", "BoolOp",
           "Call", "UserCall", "Subscript", "LenOf", "ShapeOf", "Assign", "StoreSub",
           "For",
           "While", "If", "Return", "Break", "Continue", "IfExp",
           "FunctionIR", "BINOPS", "UNARY_CALLS", "BINARY_CALLS"]

BINOPS = ("add", "sub", "mul", "div", "floordiv", "mod", "pow",
          "bitand", "bitor", "bitxor", "lshift", "rshift")
COMPARE_OPS = ("lt", "le", "gt", "ge", "eq", "ne")
UNARY_CALLS = ("sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan",
               "asin", "acos", "atan", "sinh", "cosh", "tanh", "floor",
               "ceil", "fabs", "abs", "int", "float", "round")
BINARY_CALLS = ("pow", "atan2", "hypot", "fmod", "min", "max")


@dataclass
class Node:
    """Base IR node; expressions carry an inferred stype."""

    stype: Optional[SType] = field(default=None, init=False, repr=False)


# -- expressions ---------------------------------------------------------
@dataclass
class Const(Node):
    value: object


@dataclass
class Name(Node):
    id: str


@dataclass
class BinOp(Node):
    op: str            # one of BINOPS
    left: Node
    right: Node


@dataclass
class UnaryOp(Node):
    op: str            # "neg", "not", "pos"
    operand: Node


@dataclass
class Compare(Node):
    op: str            # one of COMPARE_OPS
    left: Node
    right: Node


@dataclass
class BoolOp(Node):
    op: str            # "and" / "or"
    values: List[Node]


@dataclass
class Call(Node):
    func: str          # UNARY_CALLS/BINARY_CALLS member
    args: List[Node]


@dataclass
class UserCall(Node):
    """Call to another user function (resolved during inference to a
    compiled helper in the same translation unit)."""

    func: str
    args: List["Node"]
    symbol: Optional[str] = field(default=None, init=False)


@dataclass
class Subscript(Node):
    array: str
    index: Node
    index2: Optional["Node"] = None    # second index for 2-D arrays


@dataclass
class LenOf(Node):
    array: str


@dataclass
class ShapeOf(Node):
    """x.shape[dim] for array parameters."""

    array: str
    dim: int


# -- statements ----------------------------------------------------------
@dataclass
class Assign(Node):
    target: str
    value: Node


@dataclass
class StoreSub(Node):
    array: str
    index: Node
    value: Node
    index2: Optional["Node"] = None    # second index for 2-D arrays


@dataclass
class For(Node):
    var: str
    start: Node
    stop: Node
    step: Node
    body: List[Node]
    parallel: bool = False     # prange: compile to an OpenMP parallel loop


@dataclass
class While(Node):
    cond: Node
    body: List[Node]


@dataclass
class If(Node):
    cond: Node
    body: List[Node]
    orelse: List[Node]


@dataclass
class Return(Node):
    value: Optional[Node]


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class IfExp(Node):
    """Conditional expression: body if cond else orelse."""

    cond: "Node"
    body: "Node"
    orelse: "Node"


@dataclass
class FunctionIR:
    """A whole lowered function."""

    name: str
    arg_names: List[str]
    body: List[Node]

    def walk_statements(self):
        """Yield every statement node, depth-first."""
        def visit(stmts):
            for s in stmts:
                yield s
                if isinstance(s, (For, While)):
                    yield from visit(s.body)
                elif isinstance(s, If):
                    yield from visit(s.body)
                    yield from visit(s.orelse)
        yield from visit(self.body)
