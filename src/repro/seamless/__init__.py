"""repro.seamless -- JIT compilation, static compilation, and C interop.

The paper's four Seamless capabilities:

1. **JIT for (NumPy-centric) Python** -- :func:`jit`::

       from repro.seamless import jit

       @jit
       def sum(it):
           res = 0.0
           for i in range(len(it)):
               res += it[i]
           return res

2. **Static compilation** -- :func:`repro.seamless.static.build_module`
   and the ``seamless`` CLI turn plain Python (no language extensions,
   unlike Cython's cdef) into a shared library + wrapper module.

3. **Trivial import of C libraries** -- :class:`CModule`::

       class cmath(CModule):
           Header = "math.h"

       libm = cmath("m")
       libm.atan2(1.0, 2.0)

4. **Python as an algorithm specification language** --
   :func:`repro.seamless.cpp_export.export_cpp` makes Python-defined
   algorithms callable from C++ as ``seamless::numpy::sum(arr)``.

The lowering pipeline follows the published Numba staging (AST -> typed IR
-> native code), with the system C compiler standing in for LLVM; without
a compiler every entry point degrades gracefully to interpreted Python.
"""

from .backend_c import (CompiledKernel, compile_c_source, compiler_available,
                        emit_c)
from .cheader import CFunctionDecl, HeaderParseError, parse_header
from .cmodule import BoundFunction, CModule
from .cpp_export import compile_and_run_cpp, export_cpp
from .elementwise import compile_elementwise, elementwise_c_source
from .frontend import UnsupportedError, function_to_ir, source_to_ir
from .infer import TypedFunction, infer
from .jit import JitDispatcher, jit

# prange compiles to an OpenMP parallel loop; in interpreted fallbacks it
# is plain range
prange = range
from .static import StaticFunction, build_module, compile_source
from .vectorize import ElementwiseKernel, elementwise
from .stypes import (BOOL, FLOAT64, INT64, ArrayType, SType, discover,
                     float64_array, float64_array2d, from_annotation,
                     int64_array, int64_array2d, promote)

__all__ = [
    "jit", "JitDispatcher", "prange", "elementwise", "ElementwiseKernel",
    "CModule", "BoundFunction", "parse_header", "CFunctionDecl",
    "HeaderParseError",
    "build_module", "compile_source", "StaticFunction",
    "export_cpp", "compile_and_run_cpp",
    "compile_elementwise", "elementwise_c_source",
    "compiler_available", "compile_c_source", "emit_c", "CompiledKernel",
    "function_to_ir", "source_to_ir", "UnsupportedError",
    "infer", "TypedFunction",
    "SType", "ArrayType", "INT64", "FLOAT64", "BOOL", "int64_array",
    "float64_array", "int64_array2d", "float64_array2d", "promote",
    "discover", "from_annotation",
]
