"""C backend: typed IR -> C99 -> system compiler -> ctypes.

The offline stand-in for the paper's LLVM lowering: instead of emitting
LLVM IR in-process we emit readable C99 and let the system ``cc`` produce
the machine code, then bind the shared object with ctypes.  The observable
contract is the same -- "compiles Python code to be run on the native CPU
instruction set" -- and the generated source doubles as the artifact for
static compilation (:mod:`repro.seamless.static`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import List, Optional

import numpy as np

from . import ir
from .frontend import UnsupportedError
from .infer import TypedFunction
from .stypes import BOOL, FLOAT64, INT64, VOID, ArrayType, SType

__all__ = ["compiler_available", "emit_c", "compile_typed",
           "compile_c_source", "CompiledKernel"]

_PRELUDE = """\
#include <math.h>
#include <stdint.h>

/* Python floor-division / modulo semantics for int64 */
static inline int64_t __pydiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}
static inline int64_t __pymod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static inline int64_t __imin(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t __imax(int64_t a, int64_t b) { return a > b ? a : b; }

/* CPython float modulo: fmod adjusted toward the divisor's sign */
static inline double __pyfmod(double a, double b) {
    double m = fmod(a, b);
    if (m != 0.0 && ((b < 0.0) != (m < 0.0))) m += b;
    return m;
}
"""

_cc_lock = threading.Lock()
_cc_path: Optional[str] = None
_cc_checked = False


def compiler_available() -> bool:
    """True when a working C compiler is on PATH."""
    global _cc_path, _cc_checked
    if _cc_checked:
        return _cc_path is not None
    with _cc_lock:
        if _cc_checked:
            return _cc_path is not None
        for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
            if not cand:
                continue
            try:
                subprocess.run([cand, "--version"], capture_output=True,
                               check=True, timeout=20)
                _cc_path = cand
                break
            except (OSError, subprocess.SubprocessError):
                continue
        _cc_checked = True
    return _cc_path is not None


def _cache_dir() -> str:
    path = os.path.join(tempfile.gettempdir(), "repro-seamless-cache")
    os.makedirs(path, exist_ok=True)
    return path


def compile_c_source(source: str, tag: str = "kernel") -> ctypes.CDLL:
    """Compile a C translation unit to a shared object and load it."""
    if not compiler_available():
        raise RuntimeError("no C compiler available")
    from ..metrics import REGISTRY as _MX  # local: backend is a leaf module
    digest = hashlib.sha256(source.encode()).hexdigest()[:20]
    base = os.path.join(_cache_dir(), f"{tag}_{digest}")
    so_path = base + ".so"
    with _cc_lock:
        if _MX.enabled:
            _MX.inc("seamless.cc.disk_cache",
                    result="hit" if os.path.exists(so_path) else "miss")
        if not os.path.exists(so_path):
            c_path = base + ".c"
            with open(c_path, "w", encoding="utf-8") as fh:
                fh.write(source)
            cmd = [_cc_path, "-O2", "-shared", "-fPIC", "-o",
                   so_path + ".tmp", c_path, "-lm"]
            if "#pragma omp" in source:
                cmd.insert(1, "-fopenmp")
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"C compilation failed:\n{proc.stderr}\n--- source ---\n"
                    f"{source}")
            os.replace(so_path + ".tmp", so_path)
    return ctypes.CDLL(so_path)


# ----------------------------------------------------------------------
# code generation
# ----------------------------------------------------------------------
def emit_c(tf: TypedFunction, symbol: Optional[str] = None) -> str:
    """Generate the C translation unit for one typed function.

    User helpers resolved during inference are emitted first as ``static``
    functions of the same translation unit (transitively hoisted there by
    the inference pass).
    """
    symbol = symbol or f"seamless_{tf.ir.name}"
    pieces = []
    # forward declarations first: helper bodies may call each other in any
    # order (nested helpers are hoisted after their callers)
    for helper_symbol, callee in tf.callees.items():
        pieces.append("static " + _signature(callee, helper_symbol) + ";")
    for helper_symbol, callee in tf.callees.items():
        pieces.append("static " + _CGen(callee).function(helper_symbol))
    pieces.append(_CGen(tf).function(symbol))
    return _PRELUDE + "\n" + "\n".join(pieces)


def _signature(tf: TypedFunction, symbol: str) -> str:
    params = []
    for name, t in zip(tf.ir.arg_names, tf.arg_types):
        if isinstance(t, ArrayType):
            params.append(f"{t.element.c_name}* {name}")
            if t.ndim == 1:
                params.append(f"int64_t {name}__len")
            else:
                params.append(f"int64_t {name}__d0")
                params.append(f"int64_t {name}__d1")
        else:
            params.append(f"{t.c_name} {name}")
    ret = tf.return_type.c_name if tf.return_type != VOID else "void"
    return f"{ret} {symbol}({', '.join(params) or 'void'})"


class _CGen:
    def __init__(self, tf: TypedFunction):
        self.tf = tf
        self.lines: List[str] = []
        self.indent = 1
        self._loop_counter = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- types ----------------------------------------------------------
    @staticmethod
    def ctype(t: SType) -> str:
        if isinstance(t, ArrayType):
            return t.element.c_name + "*"
        return t.c_name

    def function(self, symbol: str) -> str:
        tf = self.tf
        params = []
        for name, t in zip(tf.ir.arg_names, tf.arg_types):
            if isinstance(t, ArrayType):
                params.append(f"{t.element.c_name}* {name}")
                if t.ndim == 1:
                    params.append(f"int64_t {name}__len")
                else:
                    params.append(f"int64_t {name}__d0")
                    params.append(f"int64_t {name}__d1")
            else:
                params.append(f"{self.ctype(t)} {name}")
        ret = self.ctype(tf.return_type) if tf.return_type != VOID \
            else "void"
        head = f"{ret} {symbol}({', '.join(params) or 'void'})"
        self.lines = [head, "{"]
        for name, t in sorted(tf.locals.items()):
            self.emit(f"{self.ctype(t)} {name} = 0;")
        for stmt in tf.ir.body:
            self.stmt(stmt)
        self.lines.append("}")
        return "\n".join(self.lines) + "\n"

    # -- statements ------------------------------------------------------
    def stmt(self, node: ir.Node) -> None:
        if isinstance(node, ir.Assign):
            target_t = self.tf.env[node.target]
            self.emit(f"{node.target} = "
                      f"{self.cast(node.value, target_t)};")
        elif isinstance(node, ir.StoreSub):
            arr_t = self.tf.env[node.array]
            self.emit(f"{node.array}[{self._flat_index(node)}] = "
                      f"{self.cast(node.value, arr_t.element)};")
        elif isinstance(node, ir.For):
            var = node.var
            start = self.expr(node.start)
            stop = self.expr(node.stop)
            step = self.expr(node.step)
            sid = self._loop_counter
            self._loop_counter += 1
            if isinstance(node.step, ir.Const) and node.step.value > 0:
                cond = f"{var} < __stop_{sid}"
            else:
                cond = (f"(__step_{sid} > 0 ? {var} < __stop_{sid} : "
                        f"{var} > __stop_{sid})")
            self.emit(f"int64_t __stop_{sid} = {stop};")
            self.emit(f"int64_t __step_{sid} = {step};")
            if node.parallel:
                self.emit(self._omp_pragma(node))
            self.emit(f"for ({var} = {start}; {cond}; "
                      f"{var} += __step_{sid}) {{")
            self.indent += 1
            for child in node.body:
                self.stmt(child)
            self.indent -= 1
            self.emit("}")
        elif isinstance(node, ir.While):
            self.emit(f"while ({self.expr(node.cond)}) {{")
            self.indent += 1
            for child in node.body:
                self.stmt(child)
            self.indent -= 1
            self.emit("}")
        elif isinstance(node, ir.If):
            self.emit(f"if ({self.expr(node.cond)}) {{")
            self.indent += 1
            for child in node.body:
                self.stmt(child)
            self.indent -= 1
            if node.orelse:
                self.emit("} else {")
                self.indent += 1
                for child in node.orelse:
                    self.stmt(child)
                self.indent -= 1
            self.emit("}")
        elif isinstance(node, ir.Return):
            if node.value is None or self.tf.return_type == VOID:
                self.emit("return;")
            else:
                self.emit(f"return "
                          f"{self.cast(node.value, self.tf.return_type)};")
        elif isinstance(node, ir.Break):
            self.emit("break;")
        elif isinstance(node, ir.Continue):
            self.emit("continue;")
        else:
            raise UnsupportedError(f"cannot lower {type(node).__name__}")

    # -- expressions -------------------------------------------------------
    def cast(self, node: ir.Node, to: SType) -> str:
        code = self.expr(node)
        if node.stype is not None and node.stype != to and \
                not isinstance(to, ArrayType):
            return f"({to.c_name})({code})"
        return code

    def expr(self, node: ir.Node) -> str:
        if isinstance(node, ir.Const):
            if isinstance(node.value, bool):
                return "1" if node.value else "0"
            if isinstance(node.value, int):
                return f"INT64_C({node.value})" \
                    if abs(node.value) > 2**31 else str(node.value)
            value = float(node.value)
            if value != value:
                return "NAN"
            if value == float("inf"):
                return "INFINITY"
            if value == float("-inf"):
                return "(-INFINITY)"
            return repr(value)
        if isinstance(node, ir.Name):
            return node.id
        if isinstance(node, ir.BinOp):
            return self.binop(node)
        if isinstance(node, ir.UnaryOp):
            inner = self.expr(node.operand)
            if node.op == "neg":
                return f"(-({inner}))"
            if node.op == "not":
                return f"(!({inner}))"
            return f"(+({inner}))"
        if isinstance(node, ir.Compare):
            c_op = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
                    "eq": "==", "ne": "!="}[node.op]
            return (f"({self.expr(node.left)} {c_op} "
                    f"{self.expr(node.right)})")
        if isinstance(node, ir.BoolOp):
            join = " && " if node.op == "and" else " || "
            return "(" + join.join(f"({self.expr(v)})"
                                   for v in node.values) + ")"
        if isinstance(node, ir.Call):
            return self.call(node)
        if isinstance(node, ir.UserCall):
            callee = self.tf.callees[node.symbol]
            args = ", ".join(self.cast(a, t) for a, t in
                             zip(node.args, callee.arg_types))
            return f"{node.symbol}({args})"
        if isinstance(node, ir.Subscript):
            return f"{node.array}[{self._flat_index(node)}]"
        if isinstance(node, ir.LenOf):
            t = self.tf.env[node.array]
            return f"{node.array}__len" if t.ndim == 1 else \
                f"{node.array}__d0"
        if isinstance(node, ir.ShapeOf):
            t = self.tf.env[node.array]
            if t.ndim == 1:
                return f"{node.array}__len"
            return f"{node.array}__d{node.dim}"
        if isinstance(node, ir.IfExp):
            target = node.stype
            return (f"(({self.expr(node.cond)}) ? "
                    f"{self.cast(node.body, target)} : "
                    f"{self.cast(node.orelse, target)})")
        raise UnsupportedError(f"cannot lower {type(node).__name__}")

    def _omp_pragma(self, node: "ir.For") -> str:
        """Build the OpenMP pragma for a prange loop.

        prange semantics (Numba-style): scalars updated with ``x += expr``
        or ``x *= expr`` are reductions; every other scalar assigned in
        the body is thread-private; array writes are the user's
        responsibility to keep disjoint.
        """
        reductions = {}   # var -> "+" | "*"
        assigned = set()

        def visit(stmts):
            for s in stmts:
                if isinstance(s, ir.Assign):
                    value = s.value
                    if (isinstance(value, ir.BinOp)
                            and value.op in ("add", "mul")
                            and isinstance(value.left, ir.Name)
                            and value.left.id == s.target
                            and s.target not in assigned):
                        reductions[s.target] = \
                            "+" if value.op == "add" else "*"
                    else:
                        assigned.add(s.target)
                        reductions.pop(s.target, None)
                elif isinstance(s, ir.For):
                    assigned.add(s.var)
                    visit(s.body)
                elif isinstance(s, (ir.While,)):
                    visit(s.body)
                elif isinstance(s, ir.If):
                    visit(s.body)
                    visit(s.orelse)

        visit(node.body)
        assigned -= set(reductions)
        clauses = []
        if assigned:
            clauses.append("private(" + ", ".join(sorted(assigned)) + ")")
        for var, op in sorted(reductions.items()):
            clauses.append(f"reduction({op}:{var})")
        return "#pragma omp parallel for " + " ".join(clauses)

    def _flat_index(self, node) -> str:
        """Row-major flattened index for 1-D or 2-D subscripts."""
        if node.index2 is None:
            return self.expr(node.index)
        return (f"({self.expr(node.index)}) * {node.array}__d1 + "
                f"({self.expr(node.index2)})")

    def binop(self, node: ir.BinOp) -> str:
        lt, rt = node.left.stype, node.right.stype
        lcode, rcode = self.expr(node.left), self.expr(node.right)
        both_int = lt in (INT64, BOOL) and rt in (INT64, BOOL)
        if node.op == "div":
            return f"((double)({lcode}) / (double)({rcode}))"
        if node.op == "floordiv":
            if both_int:
                return f"__pydiv({lcode}, {rcode})"
            return f"floor(({lcode}) / ({rcode}))"
        if node.op == "mod":
            if both_int:
                return f"__pymod({lcode}, {rcode})"
            return f"__pyfmod((double)({lcode}), (double)({rcode}))"
        if node.op == "pow":
            return f"pow((double)({lcode}), (double)({rcode}))"
        c_op = {"add": "+", "sub": "-", "mul": "*", "bitand": "&",
                "bitor": "|", "bitxor": "^", "lshift": "<<",
                "rshift": ">>"}[node.op]
        return f"(({lcode}) {c_op} ({rcode}))"

    def call(self, node: ir.Call) -> str:
        args = [self.expr(a) for a in node.args]
        f = node.func
        if f == "int":
            return f"((int64_t)({args[0]}))"
        if f == "float":
            return f"((double)({args[0]}))"
        if f == "abs":
            if node.args[0].stype == INT64:
                return f"(({args[0]}) < 0 ? -({args[0]}) : ({args[0]}))"
            return f"fabs({args[0]})"
        if f in ("min", "max"):
            ts = [a.stype for a in node.args]
            if all(t in (INT64, BOOL) for t in ts):
                helper = "__imin" if f == "min" else "__imax"
                return f"{helper}({args[0]}, {args[1]})"
            helper = "fmin" if f == "min" else "fmax"
            return (f"{helper}((double)({args[0]}), "
                    f"(double)({args[1]}))")
        if f == "round":
            return f"round((double)({args[0]}))"
        # libm one-to-one
        cargs = ", ".join(f"(double)({a})" for a in args)
        return f"{f}({cargs})"


# ----------------------------------------------------------------------
# binding
# ----------------------------------------------------------------------
_CTYPE_OF = {INT64: ctypes.c_int64, FLOAT64: ctypes.c_double,
             BOOL: ctypes.c_int64}


class CompiledKernel:
    """A natively compiled function bound through ctypes.

    Handles argument conversion (lists -> arrays, dtype coercion with
    write-back for mutated array arguments) so call sites look exactly like
    the original Python function.
    """

    def __init__(self, tf: TypedFunction, symbol: Optional[str] = None):
        self.tf = tf
        self.symbol = symbol or f"seamless_{tf.ir.name}"
        self.c_source = emit_c(tf, self.symbol)
        lib = compile_c_source(self.c_source, tag=tf.ir.name)
        self._fn = getattr(lib, self.symbol)
        argtypes = []
        for t in tf.arg_types:
            if isinstance(t, ArrayType):
                argtypes.append(np.ctypeslib.ndpointer(
                    dtype=t.element.np_dtype, ndim=t.ndim,
                    flags="C_CONTIGUOUS"))
                argtypes.extend([ctypes.c_int64] * t.ndim)
            else:
                argtypes.append(_CTYPE_OF[t])
        self._fn.argtypes = argtypes
        self._fn.restype = None if tf.return_type == VOID else \
            _CTYPE_OF[tf.return_type]
        self._written = self._find_written_arrays()

    def _find_written_arrays(self):
        written = set()
        for stmt in self.tf.ir.walk_statements():
            if isinstance(stmt, ir.StoreSub):
                written.add(stmt.array)
        return {name for name in written if name in self.tf.ir.arg_names}

    def __call__(self, *args):
        if len(args) != len(self.tf.arg_types):
            raise TypeError(f"{self.tf.ir.name} takes "
                            f"{len(self.tf.arg_types)} arguments")
        c_args = []
        writeback = []
        for name, t, value in zip(self.tf.ir.arg_names, self.tf.arg_types,
                                  args):
            if isinstance(t, ArrayType):
                original = value
                arr = np.ascontiguousarray(value, dtype=t.element.np_dtype)
                if arr.ndim != t.ndim:
                    raise TypeError(f"argument {name!r} must be "
                                    f"{t.ndim}-D")
                if name in self._written and arr is not original:
                    writeback.append((original, arr))
                c_args.append(arr)
                c_args.extend(arr.shape)
            else:
                c_args.append(t.np_dtype.type(value))
        result = self._fn(*c_args)
        for original, arr in writeback:
            if isinstance(original, np.ndarray):
                original[...] = arr
            elif isinstance(original, list):
                original[:] = arr.tolist()
        if self.tf.return_type == BOOL:
            return bool(result)
        return result


def compile_typed(tf: TypedFunction) -> CompiledKernel:
    """Compile a typed function to native code (raises without a cc)."""
    return CompiledKernel(tf)
