"""The Seamless type lattice.

Small by design: the paper's approach is "staged and incremental, focusing
on the parts of Python and NumPy that yield the greatest performance
benefits" -- for numeric kernels those are int64/float64/bool scalars and
contiguous 1-D numeric arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["SType", "INT64", "FLOAT64", "BOOL", "VOID", "ArrayType",
           "int64_array", "float64_array", "int64_array2d",
           "float64_array2d", "promote", "discover", "from_annotation"]


class SType:
    """A scalar Seamless type."""

    __slots__ = ("name", "c_name", "np_dtype", "rank")

    def __init__(self, name: str, c_name: str, np_dtype, rank: int):
        self.name = name
        self.c_name = c_name
        self.np_dtype = np.dtype(np_dtype) if np_dtype is not None else None
        self.rank = rank  # promotion order: bool < int64 < float64

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, SType) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)


BOOL = SType("bool", "int64_t", np.bool_, 0)
INT64 = SType("int64", "int64_t", np.int64, 1)
FLOAT64 = SType("float64", "double", np.float64, 2)
VOID = SType("void", "void", None, -1)


class ArrayType(SType):
    """A contiguous C-order array of a scalar element type."""

    __slots__ = ("element", "ndim")

    def __init__(self, element: SType, ndim: int = 1):
        suffix = "[]" if ndim == 1 else "[" + "," * (ndim - 1) + "]"
        super().__init__(f"{element.name}{suffix}", f"{element.c_name}*",
                         element.np_dtype, element.rank)
        self.element = element
        self.ndim = ndim

    def __repr__(self):
        return self.name


int64_array = ArrayType(INT64)
float64_array = ArrayType(FLOAT64)
int64_array2d = ArrayType(INT64, ndim=2)
float64_array2d = ArrayType(FLOAT64, ndim=2)


def promote(a: SType, b: SType) -> SType:
    """Numeric promotion of two scalar types."""
    if a.is_array or b.is_array:
        raise TypeError("cannot promote array types")
    return a if a.rank >= b.rank else b


def discover(value) -> SType:
    """Type discovery from an example value (the paper's lazy-JIT path)."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, (int, np.integer)):
        return INT64
    if isinstance(value, (float, np.floating)):
        return FLOAT64
    if isinstance(value, np.ndarray):
        if value.ndim not in (1, 2):
            raise TypeError(f"only 1-D and 2-D arrays are supported, got "
                            f"{value.ndim}-D")
        if value.dtype.kind == "f":
            return float64_array if value.ndim == 1 else float64_array2d
        if value.dtype.kind in "iub":
            return int64_array if value.ndim == 1 else int64_array2d
        raise TypeError(f"unsupported array dtype {value.dtype}")
    if isinstance(value, (list, tuple)):
        if not value:
            return float64_array
        if all(isinstance(v, (bool, int, np.integer)) for v in value):
            return int64_array
        if all(isinstance(v, (int, float, np.number)) for v in value):
            return float64_array
        raise TypeError("heterogeneous sequence")
    raise TypeError(f"cannot infer a Seamless type for "
                    f"{type(value).__name__}")


_NAMED = {
    "bool": BOOL, "int": INT64, "int64": INT64, "i8": INT64,
    "float": FLOAT64, "float64": FLOAT64, "f8": FLOAT64,
    "int[]": int64_array, "int64[]": int64_array,
    "float[]": float64_array, "float64[]": float64_array,
    "int[,]": int64_array2d, "int64[,]": int64_array2d,
    "float[,]": float64_array2d, "float64[,]": float64_array2d,
    "list_of_int": int64_array, "list_of_float": float64_array,
}


def from_annotation(ann) -> Optional[SType]:
    """Translate a user type hint (string, python type, numpy dtype,
    SType) into a Seamless type."""
    if ann is None:
        return None
    if isinstance(ann, SType):
        return ann
    if isinstance(ann, str):
        key = ann.strip().lower()
        if key in _NAMED:
            return _NAMED[key]
        raise TypeError(f"unknown type annotation {ann!r}")
    if ann is int:
        return INT64
    if ann is float:
        return FLOAT64
    if ann is bool:
        return BOOL
    try:
        dt = np.dtype(ann)
    except TypeError:
        raise TypeError(f"unknown type annotation {ann!r}") from None
    if dt.kind == "f":
        return FLOAT64
    if dt.kind in "iu":
        return INT64
    if dt.kind == "b":
        return BOOL
    raise TypeError(f"unsupported dtype annotation {ann!r}")
