"""The ``@jit`` decorator (paper section IV-A).

"End users can access Seamless JIT by adding simple function decorators,
and, optionally, type hints."  The dispatcher compiles lazily per argument
signature (type discovery), caches specializations, and -- because
Seamless "works from within the existing CPython interpreter" -- falls
back to the original Python function whenever the code steps outside the
compiled subset.  Explicit signatures go through ``jit.compile`` /
``jit(types=...)``.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..metrics import REGISTRY as _MX
from .backend_c import CompiledKernel, compiler_available, compile_typed
from .frontend import UnsupportedError, function_to_ir
from .infer import infer
from .stypes import SType, discover, from_annotation

__all__ = ["jit", "JitDispatcher"]


class JitDispatcher:
    """Per-function registry of compiled specializations."""

    def __init__(self, fn: Callable, types: Optional[Sequence] = None,
                 nopython: bool = False):
        self.py_func = fn
        self.nopython = nopython
        self._lock = threading.Lock()
        self._specializations: Dict[Tuple[SType, ...], CompiledKernel] = {}
        self._ir = None
        self._ir_error: Optional[Exception] = None
        self._fallback_reason: Optional[str] = None
        functools.update_wrapper(self, fn)
        self._explicit = None
        if types is not None:
            self._explicit = tuple(from_annotation(t) for t in types)
            self._get_specialization(self._explicit)  # eager compile

    # -- pipeline ---------------------------------------------------------
    def _get_ir(self):
        if self._ir is None and self._ir_error is None:
            try:
                self._ir = function_to_ir(self.py_func)
            except UnsupportedError as exc:
                self._ir_error = exc
        if self._ir_error is not None:
            raise self._ir_error
        return self._ir

    def _make_resolver(self):
        """Resolve user-function calls against the function's globals:
        other @jit dispatchers, @elementwise kernels, or plain functions
        all compile into the same translation unit."""
        globals_ = getattr(self.py_func, "__globals__", {})
        in_progress = set()

        def resolve(name: str, arg_types):
            obj = globals_.get(name)
            target = getattr(obj, "py_func", obj)  # unwrap dispatchers
            if not callable(target):
                raise UnsupportedError(
                    f"call target {name!r} is not a compilable function")
            key = (name, tuple(t.name for t in arg_types))
            if key in in_progress:
                raise UnsupportedError(
                    f"recursive call cycle through {name!r}")
            in_progress.add(key)
            try:
                return infer(function_to_ir(target), list(arg_types),
                             resolver=resolve)
            finally:
                in_progress.discard(key)

        return resolve

    def _get_specialization(self, sig: Tuple[SType, ...]) -> CompiledKernel:
        with self._lock:
            kernel = self._specializations.get(sig)
            if kernel is None:
                if _MX.enabled:
                    _MX.inc("seamless.jit.cache_misses",
                            kernel=self.py_func.__name__)
                    t0 = time.perf_counter()
                tf = infer(self._get_ir(), list(sig),
                           resolver=self._make_resolver())
                kernel = compile_typed(tf)
                self._specializations[sig] = kernel
                if _MX.enabled:
                    _MX.observe("seamless.jit.compile_seconds",
                                time.perf_counter() - t0,
                                kernel=self.py_func.__name__)
            elif _MX.enabled:
                _MX.inc("seamless.jit.cache_hits",
                        kernel=self.py_func.__name__)
            return kernel

    # -- call -------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        if _MX.enabled:
            _MX.inc("seamless.jit.calls", kernel=self.py_func.__name__)
        if kwargs:
            return self._fallback("keyword arguments", args, kwargs)
        if not compiler_available():
            return self._fallback("no C compiler available", args, kwargs)
        try:
            sig = self._explicit if self._explicit is not None else \
                tuple(discover(a) for a in args)
            kernel = self._get_specialization(sig)
        except (UnsupportedError, TypeError, RuntimeError) as exc:
            return self._fallback(str(exc), args, kwargs)
        return kernel(*args)

    def _fallback(self, reason: str, args, kwargs):
        if self.nopython:
            raise UnsupportedError(
                f"@jit(nopython=True) function {self.py_func.__name__} "
                f"cannot be compiled: {reason}")
        self._fallback_reason = reason
        if _MX.enabled:
            _MX.inc("seamless.jit.fallbacks", kernel=self.py_func.__name__)
        return self.py_func(*args, **kwargs)

    # -- introspection ------------------------------------------------------
    @property
    def signatures(self):
        return list(self._specializations)

    def inspect_c_source(self, sig=None) -> str:
        """The generated C for a compiled signature (debugging aid)."""
        if not self._specializations:
            raise RuntimeError("no specialization compiled yet")
        if sig is None:
            sig = next(iter(self._specializations))
        return self._specializations[tuple(sig)].c_source

    @property
    def last_fallback_reason(self) -> Optional[str]:
        return self._fallback_reason

    def __repr__(self):
        return (f"JitDispatcher({self.py_func.__name__}, "
                f"{len(self._specializations)} specialization(s))")


def jit(fn: Callable = None, *, types: Optional[Sequence] = None,
        nopython: bool = False):
    """Decorate a function for JIT compilation.

    ::

        from repro.seamless import jit

        @jit
        def sum(it):
            res = 0.0
            for i in range(len(it)):
                res += it[i]
            return res

    With explicit types (eager compilation)::

        @jit(types=["float64[]", "float64"])
        def scale_sum(it, factor): ...
    """
    if fn is None:
        return lambda f: JitDispatcher(f, types=types, nopython=nopython)
    return JitDispatcher(fn, types=types, nopython=nopython)


def _jit_compile(fn: Callable = None, *, types: Optional[Sequence] = None):
    """``jit.compile``: the paper's explicitly typed variant."""
    return jit(fn, types=types)


jit.compile = _jit_compile
