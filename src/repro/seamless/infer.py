"""Type inference over Seamless IR.

Forward dataflow with promotion at joins, iterated to a fixpoint so loop
back-edges see their own assignments (``res = 0`` then ``res += it[i]``
with float elements types ``res`` as float64, like the paper's ``sum``
example).  Deviations from Python semantics follow the same compromises
Numba documents: true division always yields float64; ``**`` yields
float64; integer arithmetic is 64-bit with wraparound.
"""

from __future__ import annotations

from typing import Dict, Optional

from . import ir
from .frontend import UnsupportedError
from .stypes import (BOOL, FLOAT64, INT64, VOID, ArrayType, SType, promote)

__all__ = ["TypedFunction", "infer"]


class TypedFunction:
    """IR plus the resolved type environment and return type."""

    def __init__(self, fir: ir.FunctionIR, arg_types, env, return_type,
                 callees=None):
        self.ir = fir
        self.arg_types = list(arg_types)
        self.env: Dict[str, SType] = env
        self.return_type: SType = return_type
        # symbol -> TypedFunction for user helpers called from this body
        self.callees: Dict[str, "TypedFunction"] = callees or {}

    @property
    def locals(self) -> Dict[str, SType]:
        return {name: t for name, t in self.env.items()
                if name not in self.ir.arg_names}

    def __repr__(self):
        args = ", ".join(f"{n}: {t}" for n, t in
                         zip(self.ir.arg_names, self.arg_types))
        return f"TypedFunction({self.ir.name}({args}) -> {self.return_type})"


def infer(fir: ir.FunctionIR, arg_types,
          resolver=None) -> TypedFunction:
    """Resolve every expression's type for the given argument types.

    *resolver(name, arg_types) -> TypedFunction* resolves user-function
    calls (other @jit functions or plain helpers from the caller's
    globals); each resolved helper is compiled into the same translation
    unit by the backend.
    """
    if len(arg_types) != len(fir.arg_names):
        raise TypeError(f"{fir.name} takes {len(fir.arg_names)} arguments, "
                        f"got {len(arg_types)} types")
    env: Dict[str, SType] = dict(zip(fir.arg_names, arg_types))
    callees: Dict[str, TypedFunction] = {}
    return_type: Optional[SType] = None
    ctx = {"resolver": resolver, "callees": callees}

    def expr(node: ir.Node) -> SType:
        t = _expr_type(node, env, ctx)
        node.stype = t
        return t

    def bind(name: str, t: SType) -> bool:
        old = env.get(name)
        if old is None:
            env[name] = t
            return True
        if old == t:
            return False
        if old.is_array or t.is_array:
            raise UnsupportedError(
                f"variable {name!r} switches between array and scalar")
        new = promote(old, t)
        env[name] = new
        return new != old

    def stmts(nodes) -> bool:
        changed = False
        for node in nodes:
            changed |= stmt(node)
        return changed

    def stmt(node: ir.Node) -> bool:
        nonlocal return_type
        if isinstance(node, ir.Assign):
            return bind(node.target, expr(node.value))
        if isinstance(node, ir.StoreSub):
            arr_t = env.get(node.array)
            if not isinstance(arr_t, ArrayType):
                raise UnsupportedError(f"{node.array!r} is not an array")
            _check_index_arity(node.array, arr_t, node.index2)
            expr(node.index)
            if node.index2 is not None:
                expr(node.index2)
            expr(node.value)
            return False
        if isinstance(node, ir.For):
            changed = bind(node.var, INT64)
            for part in (node.start, node.stop, node.step):
                expr(part)
            changed |= stmts(node.body)
            return changed
        if isinstance(node, ir.While):
            expr(node.cond)
            return stmts(node.body)
        if isinstance(node, ir.If):
            expr(node.cond)
            return stmts(node.body) | stmts(node.orelse)
        if isinstance(node, (ir.Break, ir.Continue)):
            return False
        if isinstance(node, ir.Return):
            t = expr(node.value) if node.value is not None else VOID
            if t.is_array:
                raise UnsupportedError("returning arrays is not supported")
            if return_type is None or return_type == VOID:
                changed = return_type != t
                return_type = t
            elif t != VOID:
                new = promote(return_type, t)
                changed = new != return_type
                return_type = new
            else:
                changed = False
            return changed
        raise UnsupportedError(f"cannot type statement "
                               f"{type(node).__name__}")

    for _round in range(10):
        if not stmts(fir.body):
            break
    else:
        raise UnsupportedError("type inference did not converge")
    # final pass so every expression node carries its settled type
    stmts(fir.body)
    if return_type is None:
        return_type = VOID
    return TypedFunction(fir, arg_types, env, return_type,
                         callees=callees)


def _expr_type(node: ir.Node, env, ctx=None) -> SType:
    ctx = ctx or {"resolver": None, "callees": {}}
    if isinstance(node, ir.Const):
        if isinstance(node.value, bool):
            return BOOL
        if isinstance(node.value, int):
            return INT64
        return FLOAT64
    if isinstance(node, ir.Name):
        try:
            return env[node.id]
        except KeyError:
            raise UnsupportedError(
                f"name {node.id!r} is not a parameter or a previously "
                f"assigned local (globals are not supported)") from None
    if isinstance(node, ir.BinOp):
        lt = _expr_type(node.left, env, ctx)
        rt = _expr_type(node.right, env, ctx)
        node.left.stype = lt
        node.right.stype = rt
        if lt.is_array or rt.is_array:
            raise UnsupportedError("whole-array operators are not supported "
                                   "in kernels; loop over elements")
        if node.op == "div":
            return FLOAT64
        if node.op == "pow":
            return FLOAT64
        if node.op in ("bitand", "bitor", "bitxor", "lshift", "rshift"):
            if FLOAT64 in (lt, rt):
                raise UnsupportedError("bitwise ops need integer operands")
            return INT64
        t = promote(lt, rt)
        return INT64 if t == BOOL else t
    if isinstance(node, ir.UnaryOp):
        t = _expr_type(node.operand, env, ctx)
        node.operand.stype = t
        if node.op == "not":
            return BOOL
        return INT64 if t == BOOL else t
    if isinstance(node, (ir.Compare,)):
        for child in (node.left, node.right):
            child.stype = _expr_type(child, env, ctx)
        return BOOL
    if isinstance(node, ir.BoolOp):
        for child in node.values:
            child.stype = _expr_type(child, env, ctx)
        return BOOL
    if isinstance(node, ir.Call):
        arg_ts = []
        for a in node.args:
            t = _expr_type(a, env, ctx)
            a.stype = t
            arg_ts.append(t)
        if any(t.is_array for t in arg_ts):
            raise UnsupportedError(f"{node.func}() on whole arrays is not "
                                   f"supported in kernels")
        if node.func == "int":
            return INT64
        if node.func in ("float",):
            return FLOAT64
        if node.func in ("abs",):
            return arg_ts[0] if arg_ts[0] == INT64 else FLOAT64
        if node.func in ("min", "max"):
            if len(arg_ts) != 2:
                raise UnsupportedError("min/max take exactly two scalars")
            return promote(arg_ts[0], arg_ts[1])
        if node.func == "round":
            return FLOAT64
        return FLOAT64  # the C math library
    if isinstance(node, ir.UserCall):
        resolver = ctx.get("resolver")
        if resolver is None:
            raise UnsupportedError(
                f"call to unknown function {node.func!r} (no resolver in "
                f"this compilation context)")
        arg_ts = []
        for a in node.args:
            t = _expr_type(a, env, ctx)
            a.stype = t
            arg_ts.append(t)
        if any(t.is_array for t in arg_ts):
            raise UnsupportedError("user helpers take scalar arguments "
                                   "only")
        callee = resolver(node.func, arg_ts)
        symbol = "__u_" + node.func + "_" + \
            "_".join(t.name.replace("[]", "a") for t in arg_ts)
        node.symbol = symbol
        callees = ctx["callees"]
        callees[symbol] = callee
        # hoist the helper's own helpers into this unit
        callees.update(callee.callees)
        return callee.return_type
    if isinstance(node, ir.IfExp):
        node.cond.stype = _expr_type(node.cond, env, ctx)
        bt = _expr_type(node.body, env, ctx)
        ot = _expr_type(node.orelse, env, ctx)
        node.body.stype = bt
        node.orelse.stype = ot
        if bt.is_array or ot.is_array:
            raise UnsupportedError("conditional expressions must produce "
                                   "scalars")
        return promote(bt, ot)
    if isinstance(node, ir.Subscript):
        arr_t = env.get(node.array)
        if not isinstance(arr_t, ArrayType):
            raise UnsupportedError(f"{node.array!r} is not an array")
        _check_index_arity(node.array, arr_t, node.index2)
        node.index.stype = _expr_type(node.index, env, ctx)
        if node.index2 is not None:
            node.index2.stype = _expr_type(node.index2, env, ctx)
        return arr_t.element
    if isinstance(node, ir.LenOf):
        arr_t = env.get(node.array)
        if not isinstance(arr_t, ArrayType):
            raise UnsupportedError(f"len() of non-array {node.array!r}")
        return INT64
    if isinstance(node, ir.ShapeOf):
        arr_t = env.get(node.array)
        if not isinstance(arr_t, ArrayType):
            raise UnsupportedError(f"shape of non-array {node.array!r}")
        if not 0 <= node.dim < arr_t.ndim:
            raise UnsupportedError(
                f"{node.array}.shape[{node.dim}] out of range for a "
                f"{arr_t.ndim}-D array")
        return INT64
    raise UnsupportedError(f"cannot type expression {type(node).__name__}")


def _check_index_arity(name, arr_t, index2):
    if arr_t.ndim == 2 and index2 is None:
        raise UnsupportedError(f"{name!r} is 2-D: index it as {name}[i, j]")
    if arr_t.ndim == 1 and index2 is not None:
        raise UnsupportedError(f"{name!r} is 1-D: single index only")
