"""CModule: trivially import C libraries into Python (paper section IV-C).

The paper's example, verbatim::

    class cmath(CModule):
        Header = "math.h"

    libm = cmath("m")
    libm.atan2(1.0, 2.0)

Subclassing :class:`CModule` declares *which header* describes the library;
instantiating it with a library name loads the shared library (found the
same way ctypes' ``find_library`` does) and exposes every function whose
prototype the header discovery could express -- no manual signature
specification and no separate compilation step.
"""

from __future__ import annotations

import ctypes
import ctypes.util
from typing import Dict, Optional

from .cheader import CFunctionDecl, HeaderParseError, parse_header

__all__ = ["CModule", "BoundFunction"]


class BoundFunction:
    """A foreign function with discovered argtypes/restype."""

    def __init__(self, decl: CFunctionDecl, fn):
        self.decl = decl
        self._fn = fn
        self.__name__ = decl.name
        self.__doc__ = f"C function: {decl.signature}"

    def __call__(self, *args):
        return self._fn(*args)

    def __repr__(self):
        return f"<BoundFunction {self.decl.signature}>"


class CModule:
    """Base class for header-described C libraries.

    Class attributes:

    - ``Header``: header name to discover prototypes from (required).
    - ``CC``: compiler used for preprocessing (default ``cc``).
    """

    Header: Optional[str] = None
    CC: str = "cc"

    def __init__(self, library: str):
        cls = type(self)
        if cls.Header is None:
            raise TypeError(f"{cls.__name__} must define a Header class "
                            f"attribute")
        path = ctypes.util.find_library(library) or library
        try:
            self._lib = ctypes.CDLL(path)
        except OSError as exc:
            raise OSError(f"cannot load library {library!r}: {exc}") \
                from None
        self._decls = self._discover(cls.Header, cls.CC)
        self._bound: Dict[str, BoundFunction] = {}
        self.library_name = library

    _decl_cache: Dict[tuple, Dict[str, CFunctionDecl]] = {}

    @classmethod
    def _discover(cls, header: str, cc: str) -> Dict[str, CFunctionDecl]:
        key = (header, cc)
        if key not in CModule._decl_cache:
            CModule._decl_cache[key] = parse_header(header, cc=cc)
        return CModule._decl_cache[key]

    def __getattr__(self, name: str) -> BoundFunction:
        # called only for names not found normally
        if name.startswith("_"):
            raise AttributeError(name)
        bound = self._bound.get(name)
        if bound is not None:
            return bound
        decl = self._decls.get(name)
        if decl is None:
            raise AttributeError(
                f"{type(self).__name__}: header {type(self).Header!r} "
                f"declares no bindable function {name!r}")
        try:
            fn = decl.bind(self._lib)
        except AttributeError:
            raise AttributeError(
                f"library {self.library_name!r} has no symbol "
                f"{name!r}") from None
        bound = BoundFunction(decl, fn)
        self._bound[name] = bound
        return bound

    def functions(self):
        """Names of every discovered (bindable) function."""
        return sorted(self._decls)

    def __dir__(self):
        return sorted(set(super().__dir__()) | set(self._decls))

    def __repr__(self):
        return (f"{type(self).__name__}({self.library_name!r}, "
                f"{len(self._decls)} functions from "
                f"{type(self).Header!r})")
