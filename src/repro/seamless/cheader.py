"""C header parsing for automatic foreign-function discovery.

Paper section IV-C: "the argument types and return types of the exposed
functions are automatically discovered. One has only to specify the header
file location."

Real-world headers are macro soup, so discovery runs the system
preprocessor (``cc -E``) first -- the same trick every production binding
generator uses -- and then parses the flattened prototypes.  Only functions
whose full signature is expressible in ctypes scalars/pointers are bound;
the rest are skipped, which is the right behavior for "make the math
library available" use cases.
"""

from __future__ import annotations

import ctypes
import re
import subprocess
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["CFunctionDecl", "parse_header", "preprocess_header",
           "ctype_of", "HeaderParseError"]


class HeaderParseError(RuntimeError):
    pass


_SCALAR_CTYPES = {
    "void": None,
    "char": ctypes.c_char,
    "signed char": ctypes.c_byte,
    "unsigned char": ctypes.c_ubyte,
    "short": ctypes.c_short, "short int": ctypes.c_short,
    "unsigned short": ctypes.c_ushort,
    "int": ctypes.c_int,
    "unsigned": ctypes.c_uint, "unsigned int": ctypes.c_uint,
    "long": ctypes.c_long, "long int": ctypes.c_long,
    "unsigned long": ctypes.c_ulong, "unsigned long int": ctypes.c_ulong,
    "long long": ctypes.c_longlong, "long long int": ctypes.c_longlong,
    "unsigned long long": ctypes.c_ulonglong,
    "float": ctypes.c_float,
    "double": ctypes.c_double,
    "long double": ctypes.c_longdouble,
    "size_t": ctypes.c_size_t,
    "int8_t": ctypes.c_int8, "int16_t": ctypes.c_int16,
    "int32_t": ctypes.c_int32, "int64_t": ctypes.c_int64,
    "uint8_t": ctypes.c_uint8, "uint16_t": ctypes.c_uint16,
    "uint32_t": ctypes.c_uint32, "uint64_t": ctypes.c_uint64,
}

_QUALIFIERS = ("extern", "static", "inline", "__inline", "__inline__",
               "const", "volatile", "register", "restrict", "__restrict",
               "__restrict__", "_Noreturn", "__extension__")


@dataclass
class CFunctionDecl:
    """One parsed prototype."""

    name: str
    restype: Optional[type]        # ctypes type or None for void
    argtypes: List[type]
    signature: str                  # human-readable

    def bind(self, lib: ctypes.CDLL):
        fn = getattr(lib, self.name)
        fn.restype = self.restype
        fn.argtypes = self.argtypes
        return fn


def preprocess_header(header: str, cc: str = "cc") -> str:
    """Run the system preprocessor over ``#include <header>``."""
    program = f"#include <{header}>\n"
    try:
        proc = subprocess.run(
            [cc, "-E", "-P", "-x", "c", "-"], input=program,
            capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.SubprocessError) as exc:
        raise HeaderParseError(f"preprocessing {header!r} failed: {exc}") \
            from None
    if proc.returncode != 0:
        raise HeaderParseError(
            f"preprocessing {header!r} failed:\n{proc.stderr[:2000]}")
    return proc.stdout


def ctype_of(decl: str) -> Optional[object]:
    """ctypes type of a C type spelling; ``False`` when unsupported.

    Returns None for ``void``; pointer types map to the matching
    ``ctypes.POINTER`` (``char*`` to ``c_char_p``).
    """
    text = decl.strip()
    pointers = text.count("*")
    text = text.replace("*", " ")
    words = [w for w in text.split() if w not in _QUALIFIERS
             and not w.startswith("__")]
    base = " ".join(words)
    if base not in _SCALAR_CTYPES:
        return False
    scalar = _SCALAR_CTYPES[base]
    if pointers == 0:
        return scalar
    if pointers == 1:
        if scalar is ctypes.c_char:
            return ctypes.c_char_p
        if scalar is None:
            return ctypes.c_void_p
        return ctypes.POINTER(scalar)
    return False


_PROTO_RE = re.compile(
    r"(?P<ret>[A-Za-z_][\w\s\*]*?)\s*"
    r"\b(?P<name>[A-Za-z_]\w*)\s*"
    r"\((?P<args>[^()]*)\)\s*"
    r"(?:__asm__\s*\([^)]*\)\s*)?"
    r"(?:__attribute__\s*\(\([^)]*\)\)\s*)*"
    r";",
)


def parse_header(header: str, cc: str = "cc") -> Dict[str, CFunctionDecl]:
    """All bindable function prototypes declared by a system header."""
    text = preprocess_header(header, cc=cc)
    # strip attribute noise that confuses the prototype regex; the inner
    # pattern tolerates one level of nested parens, applied to a fixpoint
    attr = re.compile(
        r"__attribute__\s*\(\([^()]*(?:\([^()]*\)[^()]*)*\)\)")
    prev = None
    while prev != text:
        prev = text
        text = attr.sub(" ", text)
    text = re.sub(r"__asm\w*\s*\(\s*\"[^\"]*\"\s*\)", " ", text)
    text = re.sub(r"\b_Nullable\b|\b_Nonnull\b", " ", text)
    decls: Dict[str, CFunctionDecl] = {}
    for match in _PROTO_RE.finditer(text):
        name = match.group("name")
        ret = ctype_of(match.group("ret"))
        if ret is False:
            continue
        args_text = match.group("args").strip()
        argtypes: List[type] = []
        ok = True
        if args_text not in ("", "void"):
            for raw in args_text.split(","):
                raw = raw.strip()
                if raw == "...":
                    ok = False  # variadics need explicit handling
                    break
                # drop a trailing parameter name if present
                param = re.sub(r"\b[A-Za-z_]\w*$", "",
                               raw).strip() or raw
                t = ctype_of(param)
                if t in (False, None):
                    # retry including the last word (unnamed parameter)
                    t = ctype_of(raw)
                if t is False or t is None:
                    ok = False
                    break
                argtypes.append(t)
        if not ok:
            continue
        signature = f"{match.group('ret').strip()} {name}({args_text})"
        decls[name] = CFunctionDecl(name, ret, argtypes, signature)
    if not decls:
        raise HeaderParseError(f"no bindable prototypes found in {header!r}")
    return decls
