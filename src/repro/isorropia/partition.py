"""Partitioning algorithms.

The partitioners are deterministic serial algorithms applied to gathered
(or replicated) structure -- the same result on every rank -- while the
*interface* is distributed: inputs and outputs are maps and distributed
matrices.  Trilinos' Zoltan-backed Isorropia partitions in parallel, but
the quantity that matters downstream (the assignment) is identical, and
gathering the structure graph is exact for the problem sizes the thread
runtime hosts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..tpetra import CrsMatrix, Map

__all__ = ["partition_1d", "rcb_partition", "graph_partition",
           "repartition"]


def partition_1d(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Contiguous 1-D partition of weighted items into balanced chunks.

    Greedy prefix splitting at ideal multiples of total/nparts; returns the
    part id of each item.
    """
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0):
        raise ValueError("weights must be nonnegative")
    n = len(weights)
    total = weights.sum()
    if nparts <= 0:
        raise ValueError("nparts must be positive")
    if total == 0:
        return np.minimum(np.arange(n) * nparts // max(n, 1), nparts - 1)
    prefix = np.cumsum(weights)
    ideal = total / nparts
    parts = np.minimum((prefix - weights / 2) // ideal, nparts - 1)
    return parts.astype(np.int64)


def rcb_partition(coords: np.ndarray, nparts: int,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Recursive coordinate bisection.

    Splits along the longest axis at the weighted median, recursing until
    *nparts* parts exist.  Handles non-power-of-two part counts by
    splitting proportionally.
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=float))
    if coords.shape[0] < coords.shape[1] and coords.shape[0] <= 3:
        coords = coords.T
    n = coords.shape[0]
    weights = np.ones(n) if weights is None else np.asarray(weights, float)
    out = np.zeros(n, dtype=np.int64)

    def recurse(idx: np.ndarray, parts: int, first_part: int) -> None:
        if parts == 1 or len(idx) == 0:
            out[idx] = first_part
            return
        left_parts = parts // 2
        frac = left_parts / parts
        sub = coords[idx]
        spans = sub.max(axis=0) - sub.min(axis=0) if len(idx) else \
            np.zeros(coords.shape[1])
        axis = int(np.argmax(spans))
        order = np.argsort(sub[:, axis], kind="stable")
        w = weights[idx][order]
        cut = np.searchsorted(np.cumsum(w), frac * w.sum(), side="right")
        cut = int(np.clip(cut, 1, len(idx) - 1)) if len(idx) > 1 else 0
        left = idx[order[:cut]]
        right = idx[order[cut:]]
        recurse(left, left_parts, first_part)
        recurse(right, parts - left_parts, first_part + left_parts)

    recurse(np.arange(n), nparts, 0)
    return out


def graph_partition(adjacency: sp.spmatrix, nparts: int,
                    refine_passes: int = 4, seed: int = 0) -> np.ndarray:
    """Multilevel-flavored graph partition: greedy BFS growth + KL refine.

    *adjacency* is a symmetric sparse matrix whose nonzeros are edges
    (weights used as edge weights).  Deterministic for a fixed seed.
    """
    A = sp.csr_matrix(adjacency)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("adjacency must be square")
    target = n / nparts
    parts = np.full(n, -1, dtype=np.int64)
    rng = np.random.default_rng(seed)
    degrees = np.diff(A.indptr)
    unassigned = set(range(n))
    for p in range(nparts):
        if not unassigned:
            break
        budget = int(round(target)) if p < nparts - 1 else len(unassigned)
        # seed at the lowest-degree unassigned vertex (peripheral start)
        seed_v = min(unassigned, key=lambda v: (degrees[v], v))
        frontier = [seed_v]
        grown = 0
        while frontier and grown < budget:
            v = frontier.pop(0)
            if parts[v] != -1:
                continue
            parts[v] = p
            unassigned.discard(v)
            grown += 1
            nbrs = A.indices[A.indptr[v]:A.indptr[v + 1]]
            frontier.extend(int(u) for u in nbrs if parts[u] == -1)
        # if the region ran out of frontier, jump to another component
        while grown < budget and unassigned:
            v = min(unassigned)
            frontier = [v]
            while frontier and grown < budget:
                u = frontier.pop(0)
                if parts[u] != -1:
                    continue
                parts[u] = p
                unassigned.discard(u)
                grown += 1
                nbrs = A.indices[A.indptr[u]:A.indptr[u + 1]]
                frontier.extend(int(w) for w in nbrs if parts[w] == -1)
    parts[parts == -1] = nparts - 1
    # KL-style boundary refinement: move vertices when gain > 0 and
    # balance is preserved
    sizes = np.bincount(parts, minlength=nparts).astype(float)
    max_size = np.ceil(1.05 * target)
    for _pass in range(refine_passes):
        moved = 0
        for v in rng.permutation(n):
            pv = parts[v]
            sl = slice(A.indptr[v], A.indptr[v + 1])
            nbr_parts = parts[A.indices[sl]]
            w = np.abs(A.data[sl])
            internal = w[nbr_parts == pv].sum()
            best_gain, best_p = 0.0, pv
            for q in np.unique(nbr_parts):
                if q == pv or sizes[q] + 1 > max_size:
                    continue
                external = w[nbr_parts == q].sum()
                gain = external - internal
                if gain > best_gain and sizes[pv] > 1:
                    best_gain, best_p = gain, q
            if best_p != pv:
                parts[v] = best_p
                sizes[pv] -= 1
                sizes[best_p] += 1
                moved += 1
        if moved == 0:
            break
    return parts


def repartition(A: CrsMatrix, method: str = "graph",
                coords: Optional[np.ndarray] = None,
                weights: Optional[np.ndarray] = None, seed: int = 0) -> Map:
    """Compute a better row map for a distributed matrix.  Collective.

    ``method``: ``"graph"`` (edge-cut minimizing), ``"rcb"`` (needs
    *coords*: one row of coordinates per global row), or ``"1d"``
    (contiguous chunks balanced by row nonzeros).

    Returns a new Map; move data with
    :class:`~repro.tpetra.import_export.Import`.
    """
    comm = A.row_map.comm
    nparts = comm.size
    A_global = A.to_scipy_global(root=None)
    if method == "graph":
        # symmetrize the pattern to get an undirected graph
        pattern = (abs(A_global) + abs(A_global.T)).tocsr()
        pattern.setdiag(0)
        pattern.eliminate_zeros()
        parts = graph_partition(pattern, nparts, seed=seed)
    elif method == "rcb":
        if coords is None:
            raise ValueError("rcb needs coordinates")
        parts = rcb_partition(coords, nparts, weights=weights)
    elif method == "1d":
        row_weights = np.diff(A_global.indptr).astype(float)
        parts = partition_1d(row_weights, nparts)
    else:
        raise ValueError(f"unknown method {method!r}")
    my_gids = np.nonzero(parts == comm.rank)[0].astype(np.int64)
    return Map(A.num_global_rows, my_gids, comm, kind="arbitrary")
