"""Partition quality metrics."""

from __future__ import annotations

from typing import Dict

import numpy as np
import scipy.sparse as sp

__all__ = ["edge_cut", "imbalance", "partition_quality"]


def edge_cut(adjacency: sp.spmatrix, parts: np.ndarray) -> float:
    """Total weight of edges crossing part boundaries (each edge once)."""
    A = sp.coo_matrix(adjacency)
    parts = np.asarray(parts)
    crossing = parts[A.row] != parts[A.col]
    # each undirected edge appears twice in a symmetric matrix
    return float(np.abs(A.data[crossing]).sum() / 2.0)


def imbalance(parts: np.ndarray, nparts: int,
              weights: np.ndarray = None) -> float:
    """max part weight / ideal part weight (1.0 = perfectly balanced)."""
    parts = np.asarray(parts)
    if weights is None:
        weights = np.ones(len(parts))
    sizes = np.zeros(nparts)
    np.add.at(sizes, parts, weights)
    ideal = weights.sum() / nparts
    return float(sizes.max() / ideal) if ideal > 0 else 1.0


def partition_quality(adjacency: sp.spmatrix, parts: np.ndarray,
                      nparts: int) -> Dict[str, float]:
    """Summary dict: edge cut, imbalance, and boundary vertex count."""
    A = sp.csr_matrix(adjacency)
    parts = np.asarray(parts)
    boundary = 0
    for v in range(A.shape[0]):
        nbrs = A.indices[A.indptr[v]:A.indptr[v + 1]]
        if np.any(parts[nbrs] != parts[v]):
            boundary += 1
    return {
        "edge_cut": edge_cut(A, parts),
        "imbalance": imbalance(parts, nparts),
        "boundary_vertices": float(boundary),
    }
