"""repro.isorropia -- partitioning and load balancing (Isorropia equivalent).

Per Table I: "Partitioning algorithms."  Provides

- weighted 1-D repartitioning,
- recursive coordinate bisection (RCB) for mesh-like coordinate data,
- multilevel graph partitioning (greedy growth + Kernighan-Lin boundary
  refinement),
- partition quality metrics (edge cut, imbalance),
- :func:`repartition` which turns any of these into a new
  :class:`~repro.tpetra.map.Map` for redistributing matrices and vectors.
"""

from .metrics import edge_cut, imbalance, partition_quality
from .partition import (graph_partition, partition_1d, rcb_partition,
                        repartition)

__all__ = ["partition_1d", "rcb_partition", "graph_partition",
           "repartition", "edge_cut", "imbalance", "partition_quality"]
