"""repro.teuchos -- general tools (the Trilinos Teuchos package equivalent).

Per Table I of the paper: "parameter lists, reference counted pointers,
XML I/O, etc.".  Python's own reference counting stands in for RCPs; the
parameter list and timing utilities are reproduced in full because the
solver stack is configured through them.
"""

from .cli import CommandLineError, CommandLineProcessor
from .parameter_list import ParameterList, ParameterListAcceptor
from .timer import Time, TimeMonitor
from .xmlio import from_xml, to_xml

__all__ = ["ParameterList", "ParameterListAcceptor", "Time", "TimeMonitor",
           "to_xml", "from_xml", "CommandLineProcessor",
           "CommandLineError"]
