"""Timers (Teuchos::Time / Teuchos::TimeMonitor).

Benchmarks and the solver stack use these to report phase timings; the
registry (``TimeMonitor.summarize``) mirrors the Trilinos global timer
table.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["Time", "TimeMonitor"]


class Time:
    """A named accumulating stopwatch.

    Starts nest: a ``start()`` while already running increments a depth
    counter instead of raising, and only the outermost ``stop()``
    accumulates elapsed time, so re-entrant phases (recursive solvers,
    nested trace spans over the same timer) are counted once.  The timer
    is also a context manager::

        with timer:
            work()
    """

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.calls = 0
        self._start: Optional[float] = None
        self._depth = 0

    def start(self) -> "Time":
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1
        return self

    def stop(self) -> float:
        if self._depth == 0:
            raise RuntimeError(f"timer {self.name!r} not running")
        self._depth -= 1
        if self._depth > 0:
            return 0.0
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.total += elapsed
        self.calls += 1
        return elapsed

    @property
    def running(self) -> bool:
        return self._depth > 0

    @property
    def depth(self) -> int:
        """Current nesting depth (0 when stopped)."""
        return self._depth

    def reset(self) -> None:
        self.total = 0.0
        self.calls = 0
        self._start = None
        self._depth = 0

    def __enter__(self) -> "Time":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self):
        return f"Time({self.name!r}, total={self.total:.6f}s, calls={self.calls})"


class TimeMonitor:
    """Context manager that times a block against a registry of named timers.

    ::

        with TimeMonitor("SpMV"):
            y = A @ x
        print(TimeMonitor.summarize())
    """

    _registry: Dict[str, Time] = {}

    def __init__(self, name: str):
        self.timer = self._registry.setdefault(name, Time(name))

    def __enter__(self) -> Time:
        return self.timer.start()

    def __exit__(self, *exc) -> None:
        self.timer.stop()

    @classmethod
    def get_timer(cls, name: str) -> Time:
        return cls._registry.setdefault(name, Time(name))

    @classmethod
    def zero_out_timers(cls) -> None:
        for timer in cls._registry.values():
            timer.reset()

    @classmethod
    def clear(cls) -> None:
        cls._registry.clear()

    @classmethod
    def to_dict(cls) -> Dict[str, Dict[str, float]]:
        """The timer table as plain data (mergeable into metrics JSON).

        One entry per registered timer: ``{"total": s, "calls": n,
        "mean": s}`` -- the same numbers :meth:`summarize` renders, so
        consumers never re-parse the text table.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(cls._registry):
            t = cls._registry[name]
            out[name] = {
                "total": t.total,
                "calls": t.calls,
                "mean": t.total / t.calls if t.calls else 0.0,
            }
        return out

    @classmethod
    def summarize(cls) -> str:
        if not cls._registry:
            return "(no timers)"
        width = max(len(n) for n in cls._registry)
        lines = [f"{'Timer':<{width}}  {'Total (s)':>12}  {'Calls':>7}  "
                 f"{'Mean (s)':>12}"]
        for name in sorted(cls._registry):
            t = cls._registry[name]
            mean = t.total / t.calls if t.calls else 0.0
            lines.append(f"{name:<{width}}  {t.total:>12.6f}  {t.calls:>7d}  "
                         f"{mean:>12.6f}")
        return "\n".join(lines)
