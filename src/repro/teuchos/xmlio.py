"""XML serialization of parameter lists (Teuchos XML I/O).

The element format matches the Trilinos ``ParameterList`` XML schema:

.. code-block:: xml

    <ParameterList name="Solver">
      <Parameter name="Max Iterations" type="int" value="100"/>
      <ParameterList name="Preconditioner">
        <Parameter name="Type" type="string" value="ILU"/>
      </ParameterList>
    </ParameterList>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from .parameter_list import ParameterList

__all__ = ["to_xml", "from_xml"]

_TYPE_NAMES = {bool: "bool", int: "int", float: "double", str: "string"}


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse_value(type_name: str, text: str):
    if type_name == "bool":
        return text.strip().lower() == "true"
    if type_name == "int":
        return int(text)
    if type_name == "double":
        return float(text)
    if type_name == "string":
        return text
    if type_name == "Array(int)":
        return [int(x) for x in text.strip("{} ").split(",") if x.strip()]
    if type_name == "Array(double)":
        return [float(x) for x in text.strip("{} ").split(",") if x.strip()]
    raise ValueError(f"unsupported XML parameter type {type_name!r}")


def _to_element(plist: ParameterList) -> ET.Element:
    el = ET.Element("ParameterList", name=plist.name)
    for key, value in plist.items():
        if isinstance(value, ParameterList):
            sub = _to_element(value)
            sub.set("name", key)
            el.append(sub)
        else:
            if isinstance(value, (list, tuple)):
                if all(isinstance(v, int) for v in value):
                    type_name = "Array(int)"
                elif all(isinstance(v, (int, float)) for v in value):
                    type_name = "Array(double)"
                else:
                    raise TypeError(f"cannot serialize array parameter "
                                    f"{key!r} of mixed type")
                text = "{" + ",".join(str(v) for v in value) + "}"
            else:
                try:
                    type_name = _TYPE_NAMES[type(value)]
                except KeyError:
                    raise TypeError(
                        f"cannot serialize parameter {key!r} of type "
                        f"{type(value).__name__}") from None
                text = _format_value(value)
            ET.SubElement(el, "Parameter", name=key, type=type_name,
                          value=text)
    return el


def to_xml(plist: ParameterList) -> str:
    """Serialize a :class:`ParameterList` to a Trilinos-style XML string."""
    el = _to_element(plist)
    ET.indent(el)
    return ET.tostring(el, encoding="unicode")


def _from_element(el: ET.Element) -> ParameterList:
    plist = ParameterList(name=el.get("name", "ANONYMOUS"))
    for child in el:
        if child.tag == "ParameterList":
            sub = _from_element(child)
            plist.set(child.get("name", sub.name), sub)
        elif child.tag == "Parameter":
            plist.set(child.get("name"),
                      _parse_value(child.get("type"), child.get("value")))
        else:
            raise ValueError(f"unexpected XML element {child.tag!r}")
    return plist


def from_xml(text: str) -> ParameterList:
    """Parse a Trilinos-style XML string into a :class:`ParameterList`."""
    root = ET.fromstring(text)
    if root.tag != "ParameterList":
        raise ValueError("root element must be <ParameterList>")
    return _from_element(root)
