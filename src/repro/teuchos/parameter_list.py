"""Hierarchical, validated parameter lists (Teuchos::ParameterList).

The whole solver stack (`repro.solvers`) is configured through these, the
same way Trilinos packages are.  A :class:`ParameterList` behaves like a
dict with case-preserving string keys, nested sublists, used/unused
tracking (Trilinos warns about unused parameters -- handy for catching
typos in solver options), and optional validators.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["ParameterList", "ParameterListAcceptor"]


class _Entry:
    __slots__ = ("value", "used", "validator", "doc")

    def __init__(self, value, validator=None, doc=""):
        self.value = value
        self.used = False
        self.validator = validator
        self.doc = doc


class ParameterList:
    """A dict-like container of named parameters and nested sublists."""

    def __init__(self, name: str = "ANONYMOUS", **params: Any):
        self.name = name
        self._entries: Dict[str, _Entry] = {}
        for key, value in params.items():
            self.set(key, value)

    # ------------------------------------------------------------------
    # core access
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any, doc: str = "",
            validator: Optional[Callable[[Any], bool]] = None) -> "ParameterList":
        """Set a parameter; returns self for chaining."""
        if not isinstance(key, str):
            raise TypeError("parameter names must be strings")
        if validator is not None and not validator(value):
            raise ValueError(f"value {value!r} rejected by validator "
                             f"for parameter {key!r}")
        entry = self._entries.get(key)
        if entry is not None and entry.validator is not None \
                and not entry.validator(value):
            raise ValueError(f"value {value!r} rejected by validator "
                             f"for parameter {key!r}")
        if entry is None or validator is not None:
            self._entries[key] = _Entry(value, validator, doc)
        else:
            entry.value = value
        return self

    def get(self, key: str, default: Any = None) -> Any:
        """Get a parameter, marking it used; sets the default if absent.

        Follows Teuchos semantics: ``get`` with a default *inserts* the
        default so later gets agree.
        """
        if key not in self._entries:
            if default is None:
                raise KeyError(f"parameter {key!r} not found in list "
                               f"{self.name!r}")
            self.set(key, default)
        entry = self._entries[key]
        entry.used = True
        return entry.value

    def sublist(self, key: str) -> "ParameterList":
        """Get (creating if needed) a nested sublist."""
        if key not in self._entries:
            self.set(key, ParameterList(name=key))
        entry = self._entries[key]
        if not isinstance(entry.value, ParameterList):
            raise TypeError(f"parameter {key!r} exists and is not a sublist")
        entry.used = True
        return entry.value

    def isParameter(self, key: str) -> bool:
        return key in self._entries

    def isSublist(self, key: str) -> bool:
        return key in self._entries and \
            isinstance(self._entries[key].value, ParameterList)

    def remove(self, key: str) -> None:
        del self._entries[key]

    # ------------------------------------------------------------------
    # dict-like conveniences
    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        entry = self._entries[key]
        entry.used = True
        return entry.value

    def __setitem__(self, key: str, value: Any) -> None:
        self.set(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        return list(self._entries)

    def items(self):
        return [(k, e.value) for k, e in self._entries.items()]

    # ------------------------------------------------------------------
    # hygiene
    # ------------------------------------------------------------------
    def unused(self) -> List[str]:
        """Dotted paths of parameters that were set but never read."""
        out = []
        for key, entry in self._entries.items():
            if isinstance(entry.value, ParameterList):
                out.extend(f"{key}.{sub}" for sub in entry.value.unused())
            elif not entry.used:
                out.append(key)
        return out

    def update(self, other: "ParameterList",
               override: bool = True) -> "ParameterList":
        """Merge another list into this one (recursively for sublists)."""
        for key, entry in other._entries.items():
            if isinstance(entry.value, ParameterList):
                self.sublist(key).update(entry.value, override=override)
            elif override or key not in self._entries:
                self.set(key, entry.value)
        return self

    def copy(self) -> "ParameterList":
        out = ParameterList(name=self.name)
        for key, entry in self._entries.items():
            value = entry.value
            if isinstance(value, ParameterList):
                value = value.copy()
            out.set(key, value, doc=entry.doc, validator=entry.validator)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {k: (v.to_dict() if isinstance(v, ParameterList) else v)
                for k, v in self.items()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  name: str = "ANONYMOUS") -> "ParameterList":
        plist = cls(name=name)
        for key, value in data.items():
            if isinstance(value, dict):
                plist.set(key, cls.from_dict(value, name=key))
            else:
                plist.set(key, value)
        return plist

    def __eq__(self, other) -> bool:
        return isinstance(other, ParameterList) and \
            self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return f"ParameterList({self.name!r}, {self.to_dict()!r})"

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.name}:"]
        for key, entry in self._entries.items():
            if isinstance(entry.value, ParameterList):
                lines.append(entry.value.pretty(indent + 1))
            else:
                star = "" if entry.used else "  [unused]"
                lines.append(f"{pad}  {key} = {entry.value!r}{star}")
        return "\n".join(lines)


class ParameterListAcceptor:
    """Mixin for objects configured by a :class:`ParameterList`.

    Subclasses override :meth:`default_parameters` and read their options
    in ``__init__`` via ``self.plist.get(...)``.
    """

    def __init__(self, params: Optional[ParameterList] = None):
        self.plist = self.default_parameters()
        if params is not None:
            if isinstance(params, dict):
                params = ParameterList.from_dict(params)
            self.plist.update(params)

    @classmethod
    def default_parameters(cls) -> ParameterList:
        return ParameterList(name=cls.__name__)
