"""Command line processing (Teuchos::CommandLineProcessor).

The Trilinos utility the example drivers are built on: options are
declared with defaults and docs, parsed from argv, and land in a
:class:`~repro.teuchos.parameter_list.ParameterList`.  Supports
``--name=value`` and ``--name value`` spellings, ``--flag/--no-flag``
booleans, and generated ``--help`` text.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence

from .parameter_list import ParameterList

__all__ = ["CommandLineProcessor", "CommandLineError"]


class CommandLineError(Exception):
    """Unrecognized or malformed command line arguments."""


class _Option:
    __slots__ = ("name", "default", "doc", "type")

    def __init__(self, name, default, doc):
        self.name = name
        self.default = default
        self.doc = doc
        self.type = type(default)


class CommandLineProcessor:
    """Declarative argv parser producing a ParameterList.

    ::

        clp = CommandLineProcessor(doc="Poisson solve driver")
        clp.set_option("n", 64, "grid points per side")
        clp.set_option("solver", "CG", "Krylov method")
        clp.set_option("verbose", False, "print residual history")
        params = clp.parse(argv)
        n = params.get("n")
    """

    def __init__(self, doc: str = "", throw_exceptions: bool = True):
        self.doc = doc
        self.throw_exceptions = throw_exceptions
        self._options: Dict[str, _Option] = {}

    def set_option(self, name: str, default, doc: str = ""
                   ) -> "CommandLineProcessor":
        if not isinstance(default, (bool, int, float, str)):
            raise TypeError(f"option {name!r}: defaults must be "
                            f"bool/int/float/str")
        self._options[name] = _Option(name, default, doc)
        return self

    # ------------------------------------------------------------------
    def help_text(self) -> str:
        lines = []
        if self.doc:
            lines.append(self.doc)
            lines.append("")
        lines.append("Options:")
        width = max((len(o.name) for o in self._options.values()),
                    default=0) + 2
        for opt in self._options.values():
            if opt.type is bool:
                spelling = f"--{opt.name} / --no-{opt.name}"
            else:
                spelling = f"--{opt.name}=<{opt.type.__name__}>"
            lines.append(f"  {spelling:<{width + 12}} {opt.doc} "
                         f"(default: {opt.default})")
        return "\n".join(lines)

    def parse(self, argv: Optional[Sequence[str]] = None) -> ParameterList:
        """Parse argv (default ``sys.argv[1:]``) into a ParameterList."""
        argv = list(sys.argv[1:]) if argv is None else list(argv)
        out = ParameterList("CommandLine")
        for opt in self._options.values():
            out.set(opt.name, opt.default, doc=opt.doc)
        i = 0
        while i < len(argv):
            token = argv[i]
            if token in ("-h", "--help"):
                print(self.help_text())
                raise SystemExit(0)
            if not token.startswith("--"):
                self._fail(f"unexpected positional argument {token!r}")
                i += 1
                continue
            body = token[2:]
            value: Optional[str]
            if "=" in body:
                name, value = body.split("=", 1)
            else:
                name, value = body, None
            negated = False
            if name.startswith("no-") and name[3:] in self._options and \
                    self._options[name[3:]].type is bool:
                name = name[3:]
                negated = True
            opt = self._options.get(name)
            if opt is None:
                self._fail(f"unrecognized option --{name}")
                i += 1
                continue
            if opt.type is bool:
                if value is None:
                    parsed = not negated
                else:
                    parsed = value.strip().lower() in ("1", "true", "yes",
                                                       "on")
                    if negated:
                        parsed = not parsed
            else:
                if value is None:
                    i += 1
                    if i >= len(argv):
                        self._fail(f"option --{name} needs a value")
                        break
                    value = argv[i]
                try:
                    parsed = opt.type(value)
                except ValueError:
                    self._fail(f"option --{name}: cannot parse {value!r} "
                               f"as {opt.type.__name__}")
                    i += 1
                    continue
            out.set(name, parsed)
            i += 1
        return out

    def _fail(self, message: str) -> None:
        if self.throw_exceptions:
            raise CommandLineError(message)
