"""A Trilinos-style command line solver driver.

Shows the Teuchos `CommandLineProcessor` pattern the Trilinos example
drivers use: declare options, parse argv into a ParameterList, and hand
everything to the solver stack.

    python examples/solver_driver.py --nx=48 --solver=CG --prec=ML
    python examples/solver_driver.py --matrix=Recirc2D --solver=GMRES --prec=ILU
    python examples/solver_driver.py --help
"""

import sys
from contextlib import nullcontext

from repro import core, galeri, mpi, tpetra
from repro.teuchos import CommandLineProcessor, ParameterList, TimeMonitor


def make_clp() -> CommandLineProcessor:
    clp = CommandLineProcessor(doc="Distributed linear solve driver")
    clp.set_option("matrix", "Laplace2D",
                   "gallery operator (Laplace2D, Recirc2D, Anisotropic2D)")
    clp.set_option("nx", 32, "grid points per side")
    clp.set_option("ranks", 4, "SPMD ranks")
    clp.set_option("solver", "CG", "CG|GMRES|BICGSTAB|MINRES|TFQMR|"
                                   "Direct|AMG")
    clp.set_option("prec", "ML", "None|Jacobi|GS|SGS|ILU|ILUT|Chebyshev|"
                                 "Schwarz|ML")
    clp.set_option("tol", 1e-10, "relative residual tolerance")
    clp.set_option("verbose", False, "print the residual history")
    return clp


def main(argv=None) -> int:
    options = make_clp().parse(argv)
    nx = options.get("nx")

    def program(comm):
        # the timer registry is process-global: time on rank 0 only
        def timed(name):
            return TimeMonitor(name) if comm.rank == 0 else nullcontext()

        with timed("assembly"):
            A = galeri.create_matrix(options.get("matrix"), comm,
                                     nx=nx, ny=nx)
        x_true = tpetra.Vector(A.row_map)
        x_true.randomize(seed=42)
        b = A @ x_true
        params = ParameterList("LS") \
            .set("Solver", options.get("solver")) \
            .set("Preconditioner", options.get("prec")) \
            .set("Tolerance", options.get("tol")) \
            .set("Max Iterations", 5000)
        with timed("solve"):
            result = core.solve(A, b, params)
        err = (result.x - x_true).norm2() / x_true.norm2()
        return result.converged, result.iterations, err, result.history

    results = mpi.run_spmd(program, options.get("ranks"))
    converged, its, err, history = results[0]

    print(f"matrix     : {options.get('matrix')} {nx}x{nx} on "
          f"{options.get('ranks')} ranks")
    print(f"solver     : {options.get('solver')} + {options.get('prec')}")
    print(f"converged  : {converged} in {its} iterations")
    print(f"rel error  : {err:.3e}")
    if options.get("verbose"):
        for k, r in enumerate(history):
            print(f"  it {k:4d}  ||r||/||b|| = {r:.3e}")
    print()
    print(TimeMonitor.summarize())
    return 0 if converged else 1


if __name__ == "__main__":
    sys.exit(main())
