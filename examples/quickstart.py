"""Quickstart: the three pillars in one script.

Run:  python examples/quickstart.py
"""

import numpy as np

# ---------------------------------------------------------------------
# 1. ODIN -- distributed arrays that feel like NumPy
# ---------------------------------------------------------------------
from repro import odin

odin.init(nworkers=4)

x = odin.linspace(0.0, 2.0 * np.pi, 100_000)
y = odin.sin(x)                       # computed on 4 workers
print(f"[odin] y.sum()  = {y.sum():+.6f}   (expect ~0)")
print(f"[odin] y.max()  = {y.max():+.6f}   (expect ~1)")

dy = y[1:] - y[:-1]                   # distributed slicing: halo exchange
dydx = dy / (x[1] - x[0])
print(f"[odin] max |d(sin)/dx - cos| = "
      f"{np.abs(dydx.gather() - np.cos(x.gather()[:-1])).max():.2e}")


# ---------------------------------------------------------------------
# 2. PyTrilinos -- distributed solvers (inside an SPMD region)
# ---------------------------------------------------------------------
from repro import core, galeri, mpi, tpetra
from repro.teuchos import ParameterList


def solve_poisson(comm):
    A = galeri.laplace_2d(32, 32, comm)          # distributed 5-pt stencil
    b = tpetra.Vector(A.row_map).putScalar(1.0)
    params = ParameterList("LS").set("Solver", "CG") \
                                .set("Preconditioner", "ML") \
                                .set("Tolerance", 1e-10)
    result = core.solve(A, b, params)
    return result.converged, result.iterations, result.x.norm2()


results = mpi.run_spmd(solve_poisson, nranks=4)
converged, its, norm = results[0]
print(f"[trilinos] CG+AMG on 32x32 Poisson: converged={converged} "
      f"in {its} iterations, ||x|| = {norm:.4f}")


# ---------------------------------------------------------------------
# 3. Seamless -- JIT compilation of plain Python
# ---------------------------------------------------------------------
from repro.seamless import compiler_available, jit


@jit
def ksum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res


data = np.random.default_rng(0).random(1_000_000)
print(f"[seamless] compiler available: {compiler_available()}")
print(f"[seamless] jit sum = {ksum(data):.4f}  numpy sum = "
      f"{data.sum():.4f}")

odin.shutdown()
print("quickstart complete.")
