"""Paper section III-G: finite difference calculations on a structured grid.

The listing from the paper, verbatim (modulo problem size):

    x = odin.linspace(1, 2*pi, 10**8)
    y = odin.sin(x)
    dx = x[1] - x[0]
    dy = y[1:] - y[:-1]
    dydx = dy / dx

"The dy array above is another distributed ODIN array, and its computation
requires some small amount of inter-node communication, since it is the
subtraction of shifted array slices. The equivalent MPI code would require
several calls to communication routines, whereas here, ODIN performs this
communication automatically."

This script runs the computation, checks it against serial NumPy, and
prints the measured communication so the "small amount" claim is visible.
"""

import numpy as np

from repro import odin

N = 1_000_000
NWORKERS = 4

ctx = odin.init(nworkers=NWORKERS)

# -- the paper's listing ------------------------------------------------
x = odin.linspace(1, 2 * np.pi, N)
y = odin.sin(x)

ctx.reset_counters()                      # measure just the FD expression

dx = x[1] - x[0]                          # a Python scalar
dy = y[1:] - y[:-1]                       # shifted-slice subtraction
dydx = dy / dx

ctl_msgs, ctl_bytes = ctx.control_traffic()
wrk_msgs, wrk_bytes = ctx.worker_traffic()

# -- check against serial NumPy ------------------------------------------
xs = np.linspace(1, 2 * np.pi, N)
ys = np.sin(xs)
ref = (ys[1:] - ys[:-1]) / (xs[1] - xs[0])
err = np.abs(dydx.gather() - ref).max()

print(f"grid points                 : {N:,}")
print(f"workers                     : {NWORKERS}")
print(f"dx (Python scalar)          : {dx:.3e}")
print(f"max |dydx - serial numpy|   : {err:.3e}")
print(f"control messages from driver: {ctl_msgs} ({ctl_bytes:,} bytes)")
print(f"worker data-plane messages  : {wrk_msgs} ({wrk_bytes:,} bytes)")
print(f"array payload               : {8 * N:,} bytes "
      f"(communication is a tiny fraction)")

assert err < 1e-12

# derivative accuracy sanity: d(sin)/dx ~ cos
mid_err = np.abs(dydx.gather() - np.cos(xs[:-1])).max()
print(f"max |dydx - cos(x)|         : {mid_err:.3e} "
      f"(first-order truncation error)")

odin.shutdown()
