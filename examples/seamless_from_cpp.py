"""Paper section IV-D: Python as an algorithm specification language.

The paper's C++ listing:

    #include <seamless>
    int arr[100];
    seamless::numpy::sum(arr);
    std::vector<double> darr(100);
    seamless::numpy::sum(darr);

This script defines the algorithm in Python, exports it, writes that exact
C++ program, compiles it with the system C++ compiler, runs it, and checks
the output -- "the Python code being used ... can be completely unaware of
the fact that it is being compiled to C++ code and used from another
language."
"""

import tempfile

from repro.seamless import compile_and_run_cpp, export_cpp

# the algorithm, specified in Python
ALGORITHM = '''
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res


def mean(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res / len(it)
'''

CPP_PROGRAM = r'''
#include <cstdio>
#include <vector>
#include "seamless_export.hpp"

int main() {
    int arr[100];                       // initialize arr's contents
    for (int i = 0; i < 100; ++i) arr[i] = i;
    printf("sum(int arr[100])          = %.1f\n",
           seamless::numpy::sum(arr));

    std::vector<double> darr(100);      // initialize darr's contents
    for (int i = 0; i < 100; ++i) darr[i] = 0.25 * i;
    printf("sum(std::vector<double>)   = %.2f\n",
           seamless::numpy::sum(darr));
    printf("mean(std::vector<double>)  = %.4f\n",
           seamless::numpy::mean(darr));
    return 0;
}
'''

workdir = tempfile.mkdtemp(prefix="seamless_cpp_")
print(f"working directory: {workdir}")

exports = export_cpp(ALGORITHM,
                     {"sum": ["float64[]"], "mean": ["float64[]"]},
                     workdir, name="seamless_export", namespace="numpy")
print(f"exported header : {exports['header']}")
print(f"exported library: {exports['library']}")

output = compile_and_run_cpp(CPP_PROGRAM, exports, workdir + "/build")
print("\n--- C++ program output ---")
print(output, end="")
print("---------------------------")

assert "4950.0" in output     # sum of 0..99
assert "1237.50" in output    # sum of 0.25*i
print("C++ consumed the Python-specified algorithm correctly.")
