"""Paper section III-C: local array operations with @odin.local.

The paper's listing, verbatim:

    @odin.local
    def hypot(x, y):
        return odin.sqrt(x**2 + y**2)

    x = odin.random((10**6, 10**6))
    y = odin.random((10**6, 10**6))
    h = hypot(x, y)

(The 10^6 x 10^6 shape in the paper is illustrative -- 8 exabytes; we use
a shape that fits in RAM.)  Also demonstrates the second half of the local
mode: a local function that *communicates directly with other workers*
through the worker communicator, bypassing the ODIN process (Fig. 1).
"""

import numpy as np

from repro import odin

odin.init(nworkers=4)


# -- the paper's hypot example -------------------------------------------
@odin.local
def hypot(x, y):
    return odin.sqrt(x ** 2 + y ** 2)


x = odin.random((4000, 250), seed=1)
y = odin.random((4000, 250), seed=2)

h = hypot(x, y)
print(f"h = hypot(x, y): {h.shape} DistArray, dtype {h.dtype}")

expected = np.sqrt(x.gather() ** 2 + y.gather() ** 2)
print(f"max |h - numpy hypot| = {np.abs(h.gather() - expected).max():.2e}")


# -- a local function that talks to its neighbors directly ----------------
@odin.local
def halo_smooth(u):
    """3-point smoothing with an explicit halo exchange: worker w trades
    boundary rows with w-1 and w+1 over the worker communicator."""
    comm = odin.worker_comm()
    w = comm.rank
    upper = None
    lower = None
    if w + 1 < comm.size:
        comm.send(u[-1], w + 1, tag=0)
    if w > 0:
        comm.send(u[0], w - 1, tag=1)
        upper = comm.recv(w - 1, tag=0)
    if w + 1 < comm.size:
        lower = comm.recv(w + 1, tag=1)
    padded = np.concatenate(
        [[u[0] if upper is None else upper], u,
         [u[-1] if lower is None else lower]])
    return (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0


v = odin.array(np.arange(40.0) ** 2)
s = halo_smooth(v)
vg = v.gather()
padded = np.concatenate([[vg[0]], vg, [vg[-1]]])
ref = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
print(f"halo smooth matches serial: "
      f"{np.allclose(s.gather(), ref)}")

# -- local functions returning non-array values ---------------------------
@odin.local
def local_stats(block):
    return {"worker": odin.worker_index(), "n": block.size,
            "mean": float(block.mean())}


stats = local_stats(x)
for entry in stats:
    print(f"worker {entry['worker']}: {entry['n']} elements, "
          f"local mean {entry['mean']:.4f}")

odin.shutdown()
