"""The Discussion-section use case, end to end (paper section V).

"A user ... allocates, initializes and manipulates a large simulation data
set using ODIN ... devises a solution approach using PyTrilinos solvers
... where the solver calls back to Python to evaluate a model. This model
is prototyped and debugged in pure Python, but when the time comes to
solve one or more large problems, Seamless is used [to] convert this
callback into a highly efficient numerical kernel."

Stage 1 initializes the problem with ODIN; stage 2 solves a linear system
through the ODIN->Trilinos bridge; stage 3 runs the nonlinear Newton-Krylov
pipeline with the model callback in pure Python and again Seamless-
compiled, and reports the speed difference.
"""

import numpy as np

from repro import core, mpi, odin

# ---------------------------------------------------------------------
# stage 1: initialize with ODIN (global mode, NumPy-like)
# ---------------------------------------------------------------------
odin.init(nworkers=4)
n = 64
rhs = odin.fromfunction(lambda i: np.sin((i + 1) / (n * n) * np.pi),
                        (n * n,))
print(f"[stage 1] ODIN rhs: {rhs.shape[0]} entries on 4 workers, "
      f"||b||_1 = {abs(rhs).sum():.3f}")

# ---------------------------------------------------------------------
# stage 2: hand the ODIN array to a PyTrilinos solver
# ---------------------------------------------------------------------
x, info = core.solve_odin("Laplace2D", rhs,
                          matrix_params={"nx": n, "ny": n},
                          solver="CG", preconditioner="Jacobi",
                          tol=1e-10)
print(f"[stage 2] CG+Jacobi through the ODIN bridge: "
      f"converged={info['converged']} in {info['iterations']} iterations")
residual = odin.trilinos.matvec("Laplace2D", x, {"nx": n, "ny": n}) - rhs
print(f"[stage 2] ||Ax - b||_inf = "
      f"{float(abs(residual).max()):.2e}")
odin.shutdown()

# ---------------------------------------------------------------------
# stage 3: nonlinear solve with a Python model callback, then the same
# with the callback Seamless-compiled
# ---------------------------------------------------------------------
NPTS = 20_000


def run(comm):
    plain = core.newton_krylov_pipeline(comm, NPTS, compile_callback=False)
    compiled = core.newton_krylov_pipeline(comm, NPTS,
                                           compile_callback=True)
    return plain, compiled


plain, compiled = mpi.run_spmd(run, nranks=2)[0]
print(f"\n[stage 3] Bratu problem, {NPTS} points, Newton-Krylov (JFNK)")
print(f"{'callback':<22}{'Newton':>8}{'linear':>8}{'callback s':>12}"
      f"{'total s':>10}")
print(f"{'pure Python':<22}{plain.newton_iterations:>8}"
      f"{plain.linear_iterations:>8}{plain.callback_time:>12.3f}"
      f"{plain.total_time:>10.3f}")
print(f"{'Seamless-compiled':<22}{compiled.newton_iterations:>8}"
      f"{compiled.linear_iterations:>8}{compiled.callback_time:>12.3f}"
      f"{compiled.total_time:>10.3f}")
if compiled.callback_time > 0:
    print(f"callback speedup: "
          f"{plain.callback_time / compiled.callback_time:.1f}x")
assert plain.converged and compiled.converged
print("pipeline complete: both model variants converged to the same "
      "solution.")
