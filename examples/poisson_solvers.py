"""PyTrilinos pillar: the Table-I solver stack on a 2-D Poisson problem.

Assembles a distributed 5-point Laplacian (Galeri), then walks through the
solver and preconditioner combinations the paper's Table I promises:
AztecOO Krylov methods, Ifpack preconditioners, ML algebraic multigrid,
Amesos direct solves, and an Anasazi eigensolve -- all inside one SPMD
region.
"""

import numpy as np

from repro import galeri, mpi, solvers, tpetra

NX = NY = 40
NRANKS = 4


def program(comm):
    A = galeri.laplace_2d(NX, NY, comm)
    x_true = tpetra.Vector(A.row_map)
    x_true.randomize(seed=7)
    b = A @ x_true

    rows = []

    def run(label, fn):
        result = fn()
        err = (result.x - x_true).norm2() / x_true.norm2()
        rows.append((label, result.converged, result.iterations, err))

    run("CG (no prec)", lambda: solvers.cg(A, b, tol=1e-10, maxiter=2000))
    run("CG + Jacobi", lambda: solvers.cg(
        A, b, prec=solvers.Jacobi(A), tol=1e-10, maxiter=2000))
    run("CG + SGS", lambda: solvers.cg(
        A, b, prec=solvers.SymmetricGaussSeidel(A), tol=1e-10,
        maxiter=2000))
    run("CG + ILU(0)", lambda: solvers.cg(
        A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=2000))
    run("CG + ML(AMG)", lambda: solvers.cg(
        A, b, prec=solvers.MLPreconditioner(A), tol=1e-10, maxiter=200))
    run("GMRES(30)", lambda: solvers.gmres(A, b, tol=1e-10, maxiter=2000))
    run("BiCGStab + ILU", lambda: solvers.bicgstab(
        A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=2000))
    run("MINRES", lambda: solvers.minres(A, b, tol=1e-10, maxiter=2000))

    direct = solvers.create_solver("KLU", A).solve(b)
    derr = (direct - x_true).norm2() / x_true.norm2()

    eig = solvers.lobpcg(A, nev=2, prec=solvers.ILU0(A), tol=1e-6,
                         maxiter=400)
    return rows, derr, eig.eigenvalues, eig.converged


results = mpi.run_spmd(program, nranks=NRANKS)
rows, derr, evals, econv = results[0]

print(f"2-D Poisson, {NX}x{NY} grid, {NRANKS} ranks\n")
print(f"{'method':<18}{'converged':>10}{'iterations':>12}{'rel err':>12}")
for label, conv, its, err in rows:
    print(f"{label:<18}{str(conv):>10}{its:>12}{err:>12.2e}")
print(f"{'Amesos KLU':<18}{'True':>10}{'-':>12}{derr:>12.2e}")

h = 1.0  # unscaled stencil
exact = sorted(4 - 2 * np.cos(np.pi * i / (NX + 1))
               - 2 * np.cos(np.pi * j / (NY + 1))
               for i in range(1, NX + 1) for j in range(1, NY + 1))[:2]
print(f"\nAnasazi LOBPCG smallest eigenvalues: "
      f"{np.round(evals, 6)} (exact {np.round(exact, 6)}, "
      f"converged={econv})")
