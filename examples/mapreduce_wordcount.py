"""Paper section III-I: distributed tabular data and Map-Reduce.

A word-count-shaped pipeline over a distributed structured array: map
(normalize scores), filter (drop invalid rows), and a shuffled group-by
aggregation -- "distributed structured arrays provide the fundamental
components for parallel Map-Reduce style computations."
"""

import numpy as np

from repro import odin
from repro.odin import tabular

odin.init(nworkers=4)

# synthetic event log: (category id, score) records
N = 200_000
rng = np.random.default_rng(0)
records = np.zeros(N, dtype=[("category", "i8"), ("score", "f8")])
records["category"] = rng.integers(0, 12, size=N)
records["score"] = rng.normal(loc=records["category"], scale=2.0)

table = tabular.from_records(records)
print(f"distributed table: {table.shape[0]:,} records on "
      f"{table.dist.nworkers} workers")

# MAP: clip scores into [0, 20) (stays worker-local)
def normalize(block):
    out = block.copy()
    out["score"] = np.clip(out["score"], 0.0, 20.0)
    return out


table = tabular.map_records(normalize, table)

# FILTER: keep only confident rows (length changes per worker)
table = tabular.filter_records(lambda b: b["score"] > 1.0, table)
print(f"after filter: {table.shape[0]:,} records "
      f"(counts per worker: {table.dist.counts()})")

# REDUCE: per-category mean score, shuffled by key hash between workers
means = tabular.group_aggregate(table, "category", "score", op="mean")
counts = tabular.group_aggregate(table, "category", "score", op="count")

m = {int(r["key"]): float(r["value"]) for r in means.gather()}
c = {int(r["key"]): int(r["value"]) for r in counts.gather()}

# serial reference
ref_tbl = records.copy()
ref_tbl["score"] = np.clip(ref_tbl["score"], 0.0, 20.0)
ref_tbl = ref_tbl[ref_tbl["score"] > 1.0]

print(f"\n{'category':>9}{'count':>10}{'mean score':>12}{'serial ref':>12}")
for k in sorted(m):
    ref = ref_tbl["score"][ref_tbl["category"] == k].mean()
    print(f"{k:>9}{c[k]:>10}{m[k]:>12.4f}{ref:>12.4f}")
    assert np.isclose(m[k], ref)

print("\ndistributed Map-Reduce matches the serial computation.")
odin.shutdown()
