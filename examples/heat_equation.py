"""2-D heat equation on a grid-distributed field.

Demonstrates the plural case of paper section III-A ("which dimension or
dimensions to distribute over"): the temperature field lives on a 2x2
worker grid, and a local function runs Jacobi time steps with explicit
halo exchanges between neighboring tiles over the worker communicator --
the paper's "performance critical routines ... communicate directly with
other worker nodes" guidance, in two dimensions.
"""

import numpy as np

from repro import odin

N = 64          # grid points per side
STEPS = 200     # explicit Euler steps
ALPHA = 0.1     # diffusion number (stable: < 0.25)

odin.init(nworkers=4)

# initial condition: a hot square in the middle of a cold plate
T0 = np.zeros((N, N))
T0[N // 4: N // 2, N // 4: N // 2] = 100.0

dist = odin.GridDistribution((N, N), axes=(0, 1), grid=(2, 2))
T = odin.array(T0, dist=dist)
print(f"field: {T.shape}, tiles: "
      f"{[dist.local_shape(w) for w in range(4)]}")


@odin.local
def jacobi_steps(block, dist, steps, alpha):
    """Run *steps* diffusion updates with halo exchange per step."""
    comm = odin.worker_comm()
    w = odin.worker_index()
    pr, pc = dist.grid
    r, c = dist.coords_of(w)

    def neighbor(dr, dc):
        nr, nc = r + dr, c + dc
        if 0 <= nr < pr and 0 <= nc < pc:
            return dist.worker_at((nr, nc))
        return None

    up, down = neighbor(-1, 0), neighbor(1, 0)
    left, right = neighbor(0, -1), neighbor(0, 1)
    T = block.copy()
    for _step in range(steps):
        # exchange edge rows/cols with each neighbor (tags per direction)
        for nbr, send_slice, tag in ((up, T[0], 0), (down, T[-1], 1),
                                     (left, T[:, 0], 2),
                                     (right, T[:, -1], 3)):
            if nbr is not None:
                comm.send(np.ascontiguousarray(send_slice), nbr, tag=tag)
        halo_up = comm.recv(up, tag=1) if up is not None else T[0]
        halo_down = comm.recv(down, tag=0) if down is not None else T[-1]
        halo_left = comm.recv(left, tag=3) if left is not None \
            else T[:, 0]
        halo_right = comm.recv(right, tag=2) if right is not None \
            else T[:, -1]
        padded = np.pad(T, 1, mode="edge")
        padded[0, 1:-1] = halo_up
        padded[-1, 1:-1] = halo_down
        padded[1:-1, 0] = halo_left
        padded[1:-1, -1] = halo_right
        T = T + alpha * (padded[:-2, 1:-1] + padded[2:, 1:-1]
                         + padded[1:-1, :-2] + padded[1:-1, 2:]
                         - 4.0 * T)
    return T


ctx = odin.get_context()
ctx.reset_counters()
result = jacobi_steps(T, dist, STEPS, ALPHA)
msgs, nbytes = ctx.worker_traffic()
print(f"halo exchange: {msgs} messages, {nbytes:,} bytes over "
      f"{STEPS} steps")

# serial reference
ref = T0.copy()
for _ in range(STEPS):
    padded = np.pad(ref, 1, mode="edge")
    ref = ref + ALPHA * (padded[:-2, 1:-1] + padded[2:, 1:-1]
                         + padded[1:-1, :-2] + padded[1:-1, 2:]
                         - 4.0 * ref)

err = np.abs(result.gather() - ref).max()
total0 = T0.sum()
total1 = result.gather().sum()
print(f"max |distributed - serial| = {err:.2e}")
print(f"heat conservation: {total0:.1f} -> {total1:.1f} "
      f"(insulated boundaries)")
assert err < 1e-10

odin.shutdown()
print("heat equation complete.")
