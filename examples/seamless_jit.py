"""Paper section IV-A and IV-C: the Seamless JIT and CModule.

The paper's @jit listing, verbatim:

    from seamless import jit

    @jit
    def sum(it):
        res = 0.0
        for i in range(len(it)):
            res += it[i]
        return res

and the CModule listing:

    class cmath(CModule):
        Header = "math.h"

    libm = cmath("m")
    libm.atan2(1.0, 2.0)
"""

import math
import time

import numpy as np

from repro.seamless import CModule, compiler_available, jit

print(f"C compiler available: {compiler_available()}\n")


# -- the paper's sum ------------------------------------------------------
@jit
def sum(it):  # noqa: A001 - the paper names it sum
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res


def pure_python_sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res


data = np.random.default_rng(42).random(2_000_000)

t0 = time.perf_counter()
r_py = pure_python_sum(data)
t_py = time.perf_counter() - t0

sum(data)  # warm up: triggers type discovery + compilation
t0 = time.perf_counter()
r_jit = sum(data)
t_jit = time.perf_counter() - t0

t0 = time.perf_counter()
r_np = data.sum()
t_np = time.perf_counter() - t0

print(f"{'path':<22}{'result':>16}{'time (s)':>12}{'speedup':>10}")
print(f"{'pure Python':<22}{r_py:>16.6f}{t_py:>12.5f}{'1.0x':>10}")
print(f"{'Seamless JIT':<22}{r_jit:>16.6f}{t_jit:>12.5f}"
      f"{t_py / t_jit:>9.0f}x")
print(f"{'NumPy (C library)':<22}{r_np:>16.6f}{t_np:>12.5f}"
      f"{t_py / t_np:>9.0f}x")
print(f"\ncompiled specializations: {sum.signatures}")
print("generated C (first lines):")
for line in sum.inspect_c_source().splitlines()[:8]:
    print(f"    {line}")


# -- explicit types: jit.compile ("list of integers") ----------------------
@jit(types=["int64[]"])
def isum(it):
    res = 0
    for i in range(len(it)):
        res += it[i]
    return res


print(f"\nisum([1, 2, 3]) = {isum([1, 2, 3])} (int64 specialization, "
      f"compiled eagerly)")


# -- the CModule example ----------------------------------------------------
class cmath(CModule):
    Header = "math.h"


libm = cmath("m")
print(f"\nlibm = cmath('m'): {len(libm.functions())} functions discovered "
      f"from math.h")
print(f"libm.atan2(1.0, 2.0) = {libm.atan2(1.0, 2.0):.10f}")
print(f"math.atan2(1.0, 2.0) = {math.atan2(1.0, 2.0):.10f}")
print(f"libm.hypot(3.0, 4.0) = {libm.hypot(3.0, 4.0)}")
print(f"libm.cbrt(27.0)      = {libm.cbrt(27.0)}")
