"""Chaos-engine overhead: the disabled path must cost one predicate.

Three measurements back the claim:

1. an end-to-end communication-heavy loop with (a) no plan installed,
   (b) a plan installed whose rules never match the traffic (the full
   rule-scan fires on every op), and (c) an actively-delaying plan;
2. a microbenchmark of the guard itself (``ENGINE.enabled`` attribute
   read) against an equivalent plain-bool read;
3. the relative disabled-vs-baseline overhead, which the acceptance
   criterion bounds at 2%.
"""

import time
import timeit

from repro import chaos, mpi
from repro.chaos import ENGINE, FaultPlan

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NRANKS = 2
ITERS = 400
REPEATS = 5


def _comm_loop(comm):
    total = 0.0
    for i in range(ITERS):
        total += comm.allreduce(1.0)
        if comm.rank == 0:
            comm.send(i, dest=1)
        elif comm.rank == 1:
            comm.recv(source=0)
    return total


def _timed_run():
    t0 = time.perf_counter()
    mpi.run_spmd(_comm_loop, NRANKS, timeout=120)
    return time.perf_counter() - t0


def _best_of(runs=REPEATS):
    # min-of-N: the least-interfered-with sample estimates the true cost
    return min(_timed_run() for _ in range(runs))


def _measure():
    chaos.uninstall()
    disabled = _best_of()

    # every rule targets the "rma" op class, which the loop never uses:
    # the engine is enabled and scans its rules on every send/recv/coll,
    # but nothing ever fires
    chaos.install(FaultPlan(seed=0)
                  .delay(seconds=1.0, op="rma", prob=1.0)
                  .truncate(keep=0.5, op="rma", prob=1.0))
    noop = _best_of()
    chaos.uninstall()

    chaos.install(FaultPlan(seed=0).delay(seconds=0.0002, prob=0.05))
    faulted = _best_of()
    fired = len([e for e in ENGINE.injected() if e["kind"] == "delay"])
    chaos.uninstall()

    # guard microbenchmark: the per-op cost when no plan is installed
    flag = False
    plain = timeit.timeit("flag", globals={"flag": flag}, number=1_000_000)
    guard = timeit.timeit("e.enabled", globals={"e": ENGINE},
                          number=1_000_000)
    return disabled, noop, faulted, fired, plain, guard


def generate_report() -> str:
    disabled, noop, faulted, fired, plain, guard = _measure()
    overhead_noop = 100.0 * (noop - disabled) / disabled
    overhead_faulted = 100.0 * (faulted - disabled) / disabled

    section = Section("C9: chaos-engine overhead "
                      f"({NRANKS} ranks, {ITERS} allreduce+p2p iterations)")
    section.add(table(
        ["configuration", "best-of-%d (s)" % REPEATS, "vs disabled"],
        [
            ("no plan installed (disabled)", f"{disabled:.4f}", "--"),
            ("plan installed, no rule matches",
             f"{noop:.4f}", f"{overhead_noop:+.1f}%"),
            (f"delay plan ({fired} faults fired)",
             f"{faulted:.4f}", f"{overhead_faulted:+.1f}%"),
        ]))
    section.line()
    section.add(table(
        ["guard microbenchmark (1e6 reads)", "seconds", "ns/op"],
        [
            ("plain local bool", f"{plain:.4f}", f"{plain * 1e3:.1f}"),
            ("ENGINE.enabled attribute", f"{guard:.4f}",
             f"{guard * 1e3:.1f}"),
        ]))
    section.line()
    section.line(
        "The disabled path is a single attribute read per injection "
        "site, the same contract as repro.trace/repro.metrics; the "
        "acceptance bound is <=2% end-to-end overhead with no plan "
        "installed (the first row *is* that configuration -- its cost "
        "is the baseline by construction; the second row bounds the "
        "worst case of leaving a non-matching plan installed).")
    return section.render()


def test_disabled_overhead_is_negligible(benchmark):
    """A never-matching installed plan stays within a few percent of the
    uninstalled baseline (generous CI bound; the report shows the
    measured figure)."""
    def run():
        chaos.uninstall()
        disabled = _best_of(3)
        chaos.install(FaultPlan(seed=0).delay(seconds=1.0, op="rma"))
        noop = _best_of(3)
        chaos.uninstall()
        return disabled, noop
    disabled, noop = benchmark.pedantic(run, rounds=1, iterations=1)
    assert noop < disabled * 1.6


def test_faulted_run_still_completes(benchmark):
    def run():
        chaos.install(FaultPlan(seed=0).delay(seconds=0.0002, prob=0.05))
        t = _timed_run()
        chaos.uninstall()
        return t
    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    main(generate_report)
