"""C4a -- the Table-I solver stack on the 2-D Poisson problem.

Reproduces the canonical Trilinos-style comparison: iteration counts and
solve times for CG under each preconditioner and for the direct solver,
at two grid sizes -- the shape to verify is ILU < SGS/Jacobi < none, with
ML(AMG) nearly grid-independent.
"""

import time

import numpy as np

from repro import galeri, mpi, solvers, tpetra

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NRANKS = 4
GRIDS = [(16, 16), (32, 32)]


def _solve_all(comm, nx, ny):
    A = galeri.laplace_2d(nx, ny, comm)
    x_true = tpetra.Vector(A.row_map)
    x_true.randomize(seed=1)
    b = A @ x_true
    out = []

    def run(label, make_prec):
        t0 = time.perf_counter()
        prec = make_prec(A) if make_prec else None
        setup = time.perf_counter() - t0
        t0 = time.perf_counter()
        r = solvers.cg(A, b, prec=prec, tol=1e-10, maxiter=4000)
        solve = time.perf_counter() - t0
        err = (r.x - x_true).norm2() / x_true.norm2()
        out.append((label, r.converged, r.iterations, setup, solve, err))

    run("CG (none)", None)
    run("CG + Jacobi", lambda A: solvers.Jacobi(A))
    run("CG + SGS", lambda A: solvers.SymmetricGaussSeidel(A))
    run("CG + ILU(0)", lambda A: solvers.ILU0(A))
    run("CG + Chebyshev(3)", lambda A: solvers.Chebyshev(A, degree=3))
    run("CG + AS(1)", lambda A: solvers.AdditiveSchwarz(A, overlap=1, variant="as"))
    run("CG + ML(AMG)", lambda A: solvers.MLPreconditioner(A))
    # direct for reference
    t0 = time.perf_counter()
    d = solvers.create_solver("KLU", A)
    x = d.solve(b)
    dt = time.perf_counter() - t0
    out.append(("Amesos KLU", True, 1, 0.0, dt,
                (x - x_true).norm2() / x_true.norm2()))
    return out


def _measure():
    tables = {}
    for nx, ny in GRIDS:
        results = mpi.run_spmd(_solve_all, NRANKS, args=(nx, ny))[0]
        tables[(nx, ny)] = [
            (label, str(conv), its, f"{setup * 1e3:.0f}",
             f"{solve * 1e3:.0f}", f"{err:.1e}")
            for label, conv, its, setup, solve, err in results]
    return tables


def generate_report() -> str:
    tables = _measure()
    section = Section("C4a: solver/preconditioner comparison on 2-D "
                      "Poisson")
    for (nx, ny), rows in tables.items():
        section.add(table(
            ["method", "converged", "iterations", "setup ms", "solve ms",
             "rel err"], rows,
            title=f"{nx}x{ny} grid, {NRANKS} ranks, tol 1e-10"))
        section.line()
    its = {label: r[2] for r in list(tables.values())[1]
           for label in [r[0]]}
    section.line(
        "Shape checks: unpreconditioned CG grows ~linearly with the grid "
        "dimension; point preconditioners shave a constant factor; "
        f"ML(AMG) stays ~grid-independent (its={its['CG + ML(AMG)']} on "
        "the larger grid), which is exactly the hierarchy the Trilinos "
        "stack is built to provide.")
    return section.render()


def test_amg_cg_32x32(benchmark):
    def run():
        def body(comm):
            A = galeri.laplace_2d(32, 32, comm)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            ml = solvers.MLPreconditioner(A)
            return solvers.cg(A, b, prec=ml, tol=1e-10).iterations
        return mpi.run_spmd(body, NRANKS)[0]
    its = benchmark.pedantic(run, rounds=1, iterations=1)
    assert its <= 25


def test_plain_cg_32x32(benchmark):
    def run():
        def body(comm):
            A = galeri.laplace_2d(32, 32, comm)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            return solvers.cg(A, b, tol=1e-10, maxiter=4000).iterations
        return mpi.run_spmd(body, NRANKS)[0]
    its = benchmark.pedantic(run, rounds=1, iterations=1)
    assert its > 25  # the preconditioners have something to improve


if __name__ == "__main__":
    main(generate_report)
