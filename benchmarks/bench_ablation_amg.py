"""Ablation A1 -- AMG design choices (DESIGN.md calls these out).

Sweeps the smoothed-aggregation knobs the implementation makes explicit:
prolongator smoothing on/off, smoother type/sweeps, and Additive-Schwarz
overlap, measuring CG iteration counts -- the quantities each choice is
supposed to buy.
"""

import numpy as np

from repro import galeri, mpi, solvers, tpetra
from repro.teuchos import ParameterList

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NRANKS = 2
NX = NY = 28


def _cg_iters(comm, prec_factory):
    A = galeri.laplace_2d(NX, NY, comm)
    b = tpetra.Vector(A.row_map).putScalar(1.0)
    prec = prec_factory(A)
    r = solvers.cg(A, b, prec=prec, tol=1e-10, maxiter=500)
    extra = ""
    if isinstance(prec, solvers.MLPreconditioner):
        extra = (f"{prec.num_levels} levels, "
                 f"OC={prec.operator_complexity():.2f}")
    return r.converged, r.iterations, extra


VARIANTS = [
    ("ML default (smoothed P, SGS)", lambda A: solvers.MLPreconditioner(A)),
    ("ML unsmoothed P", lambda A: solvers.MLPreconditioner(
        A, ParameterList("ML").set("prolongator: smooth", False))),
    ("ML Jacobi smoother", lambda A: solvers.MLPreconditioner(
        A, ParameterList("ML").set("smoother: type", "jacobi"))),
    ("ML 2 smoother sweeps", lambda A: solvers.MLPreconditioner(
        A, ParameterList("ML").set("smoother: sweeps", 2))),
    ("ML coarse<=200 (shallower)", lambda A: solvers.MLPreconditioner(
        A, ParameterList("ML").set("coarse: max size", 200))),
    ("AS(sym) overlap 0", lambda A: solvers.AdditiveSchwarz(
        A, overlap=0, variant="as")),
    ("AS(sym) overlap 1", lambda A: solvers.AdditiveSchwarz(
        A, overlap=1, variant="as")),
    ("AS(sym) overlap 2", lambda A: solvers.AdditiveSchwarz(
        A, overlap=2, variant="as")),
    ("RAS overlap 1 (nonsym!)", lambda A: solvers.AdditiveSchwarz(
        A, overlap=1, variant="ras")),
]


def _measure():
    rows = []
    for label, factory in VARIANTS:
        conv, its, extra = mpi.run_spmd(
            lambda comm, f=factory: _cg_iters(comm, f), NRANKS)[0]
        rows.append((label, str(conv), its, extra))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("A1: AMG / Schwarz design-choice ablation")
    section.add(table(["variant", "converged", "CG iterations", "notes"],
                      rows,
                      title=f"{NX}x{NY} Poisson, {NRANKS} ranks, tol 1e-10"))
    by = {r[0]: r[2] for r in rows}
    section.line(
        f"Prolongator smoothing buys iterations "
        f"({by['ML default (smoothed P, SGS)']} vs "
        f"{by['ML unsmoothed P']} unsmoothed); SGS beats damped Jacobi as "
        f"the smoother; symmetric-Schwarz overlap monotonically reduces "
        f"iterations ({by['AS(sym) overlap 0']} -> "
        f"{by['AS(sym) overlap 1']} -> {by['AS(sym) overlap 2']}). The "
        f"RAS row is the cautionary ablation: the restricted variant is "
        f"nonsymmetric, so pairing it with CG costs iterations -- the "
        f"reason the implementation exposes both variants.")
    return section.render()


def test_smoothed_beats_unsmoothed(benchmark):
    def run():
        a = mpi.run_spmd(lambda c: _cg_iters(
            c, VARIANTS[0][1]), NRANKS)[0][1]
        b = mpi.run_spmd(lambda c: _cg_iters(
            c, VARIANTS[1][1]), NRANKS)[0][1]
        return a, b
    smoothed, unsmoothed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert smoothed <= unsmoothed


def test_overlap_monotone(benchmark):
    def run():
        return [mpi.run_spmd(lambda c, f=f: _cg_iters(c, f),
                             NRANKS)[0][1]
                for _label, f in VARIANTS[5:8]]
    its = benchmark.pedantic(run, rounds=1, iterations=1)
    assert its[0] >= its[1] >= its[2]


if __name__ == "__main__":
    main(generate_report)
