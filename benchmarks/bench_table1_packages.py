"""T1 -- Table I of the paper: Trilinos packages included in PyTrilinos.

Regenerates the table with, for each of the 13 packages, the module of
this repository implementing its role and a live smoke check proving the
functionality exists (not just a name mapping).
"""

import numpy as np

from repro import epetra, galeri, isorropia, mpi, solvers, teuchos, tpetra, \
    triutils
from repro.teuchos import ParameterList

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table


def _smoke(comm):
    """Exercise each package's core capability; return status strings."""
    results = {}
    # Epetra: linear algebra vector and operator classes
    pc = epetra.PyComm(comm)
    m = epetra.Map(16, 0, pc)
    v = epetra.Vector(m)
    v.PutScalar(1.0)
    results["Epetra"] = f"Vector.Norm2()={v.Norm2():.3f}"
    # EpetraExt: I/O, sparse transposes, coloring
    A = galeri.laplace_1d(16, comm)
    At = A.transpose()
    results["EpetraExt"] = f"transpose nnz={At.num_global_nonzeros()}"
    # Teuchos: parameter lists, XML I/O
    plist = ParameterList("p").set("x", 1)
    results["Teuchos"] = f"XML roundtrip={teuchos.from_xml(teuchos.to_xml(plist)) == plist}"
    # TriUtils: testing utilities
    x = tpetra.Vector(A.row_map).putScalar(1.0)
    ok = triutils.residual_check(A, x, A @ x, tol=1e-12)
    results["TriUtils"] = f"residual_check={ok}"
    # Isorropia: partitioning
    new_map = isorropia.repartition(A, method="graph")
    results["Isorropia"] = f"repartitioned rows={new_map.num_my_elements}"
    # AztecOO: Krylov solvers
    r = solvers.cg(A, A @ x, tol=1e-10)
    results["AztecOO"] = f"CG converged in {r.iterations} its"
    # Galeri: example maps and matrices
    results["Galeri"] = f"Laplace2D nnz={galeri.laplace_2d(4, 4, comm).num_global_nonzeros()}"
    # Amesos: direct solvers
    d = solvers.create_solver("KLU", A).solve(A @ x)
    results["Amesos"] = f"KLU err={float((d - x).norm2()):.1e}"
    # Ifpack: algebraic preconditioners
    rp = solvers.cg(A, A @ x, prec=solvers.ILU0(A), tol=1e-10)
    results["Ifpack"] = f"ILU-CG its={rp.iterations}"
    # Komplex: complex via real
    Ac = tpetra.CrsMatrix(A.row_map, dtype=np.complex128)
    for gid in A.row_map.my_gids:
        Ac.insert_global_values(int(gid), [int(gid)], [2.0 + 1.0j])
    Ac.fillComplete()
    K, _rhs = solvers.komplex_system(
        Ac, tpetra.Vector(A.row_map, dtype=np.complex128).putScalar(1.0))
    results["Komplex"] = f"real form {K.num_global_rows}x{K.num_global_rows}"
    # Anasazi: eigensolvers
    e = solvers.lanczos(A, nev=1, which="SM", tol=1e-8)
    results["Anasazi"] = f"lambda_min={float(e.eigenvalues[0]):.5f}"
    # ML: multigrid
    A2 = galeri.laplace_2d(12, 12, comm)
    ml = solvers.MLPreconditioner(A2)
    results["ML"] = f"{ml.num_levels} levels, OC={ml.operator_complexity():.2f}"
    # NOX: nonlinear solvers
    def residual(u):
        r2 = tpetra.Vector(u.map)
        r2.local_view[...] = u.local_view ** 2 - 4.0
        return r2
    nr = solvers.NewtonSolver(residual).solve(
        tpetra.Vector(A.row_map).putScalar(1.0))
    results["NOX"] = f"Newton its={nr.iterations}"
    return results


ROWS = [
    ("Epetra", "Linear algebra vector and operator classes",
     "repro.epetra / repro.tpetra"),
    ("EpetraExt", "Extensions to Epetra (I/O, sparse transposes, coloring)",
     "repro.tpetra + repro.triutils"),
    ("Teuchos", "General tools (parameter lists, RCPs, XML I/O)",
     "repro.teuchos"),
    ("TriUtils", "Testing utilities", "repro.triutils"),
    ("Isorropia", "Partitioning algorithms", "repro.isorropia"),
    ("AztecOO", "Iterative Krylov-space linear solvers",
     "repro.solvers.krylov"),
    ("Galeri", "Examples of common maps and matrices", "repro.galeri"),
    ("Amesos", "Uniform interface to third party direct linear solvers",
     "repro.solvers.direct"),
    ("Ifpack", "Algebraic preconditioners", "repro.solvers.ifpack"),
    ("Komplex", "Complex vectors and matrices via real Epetra objects",
     "repro.solvers.komplex"),
    ("Anasazi", "Eigensolver package", "repro.solvers.anasazi"),
    ("ML", "Multi-level (algebraic multigrid) preconditioners",
     "repro.solvers.ml"),
    ("NOX", "Nonlinear solvers", "repro.solvers.nox"),
]


def generate_report() -> str:
    smoke = mpi.run_spmd(_smoke, 2)[0]
    section = Section("T1: Table I -- Trilinos packages included in "
                      "PyTrilinos")
    rows = [(name, desc, module, smoke[name])
            for name, desc, module in ROWS]
    section.add(table(
        ["Package", "Description (from the paper)", "Implemented by",
         "Live check"], rows))
    section.line(f"All {len(ROWS)} packages of Table I are functional "
                 f"(checks ran on 2 ranks).")
    return section.render()


def test_table1_smoke_all_packages(benchmark):
    results = benchmark.pedantic(
        lambda: mpi.run_spmd(_smoke, 2)[0], rounds=1, iterations=1)
    assert len(results) == len(ROWS)


if __name__ == "__main__":
    main(generate_report)
