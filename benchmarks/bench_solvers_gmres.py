"""C4b -- nonsymmetric solves: GMRES/BiCGStab/TFQMR on convection-diffusion.

The convection-dominated Recirc2D-style operator is the standard
nonsymmetric stress test; the shape to verify is that ILU-type
preconditioning collapses the iteration count and that CG (wrong method)
fails where GMRES succeeds.
"""

import numpy as np

from repro import galeri, mpi, solvers, tpetra

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NRANKS = 3
NX = NY = 24


def _measure():
    def body(comm):
        A = galeri.convection_diffusion_2d(NX, NY, comm, conv_x=20.0,
                                           conv_y=10.0)
        x_true = tpetra.Vector(A.row_map)
        x_true.randomize(seed=2)
        b = A @ x_true
        rows = []

        def run(label, fn):
            r = fn()
            err = (r.x - x_true).norm2() / x_true.norm2()
            rows.append((label, str(r.converged), r.iterations,
                         f"{err:.1e}"))

        run("GMRES(30)", lambda: solvers.gmres(A, b, tol=1e-10,
                                               maxiter=4000))
        run("GMRES(30) + ILU(0)", lambda: solvers.gmres(
            A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=4000))
        run("GMRES(30) + ILUT", lambda: solvers.gmres(
            A, b, prec=solvers.ILUT(A), tol=1e-10, maxiter=4000))
        run("BiCGStab + ILU(0)", lambda: solvers.bicgstab(
            A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=4000))
        run("TFQMR + ILU(0)", lambda: solvers.tfqmr(
            A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=4000))
        run("CG (wrong method)", lambda: solvers.cg(
            A, b, tol=1e-10, maxiter=300))
        return rows
    return mpi.run_spmd(body, NRANKS)[0]


def generate_report() -> str:
    rows = _measure()
    section = Section("C4b: nonsymmetric convection-diffusion solves")
    section.add(table(
        ["method", "converged", "iterations", "rel err"], rows,
        title=f"{NX}x{NY} upwinded convection-diffusion, conv=(20,10), "
              f"{NRANKS} ranks"))
    section.line(
        "GMRES and its transpose-free cousins converge; ILU-type "
        "preconditioning cuts iterations by an order of magnitude; CG, "
        "which assumes symmetry, fails to converge -- the standard "
        "qualitative picture for this operator family.")
    return section.render()


def test_gmres_ilu_convdiff(benchmark):
    def run():
        def body(comm):
            A = galeri.convection_diffusion_2d(NX, NY, comm, conv_x=20.0,
                                               conv_y=10.0)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            r = solvers.gmres(A, b, prec=solvers.ILU0(A), tol=1e-10,
                              maxiter=2000)
            return r.converged, r.iterations
        return mpi.run_spmd(body, NRANKS)[0]
    conv, _its = benchmark.pedantic(run, rounds=1, iterations=1)
    assert conv


if __name__ == "__main__":
    main(generate_report)
