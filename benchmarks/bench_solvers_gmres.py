"""C4b -- nonsymmetric solves: GMRES/BiCGStab/TFQMR on convection-diffusion.

The convection-dominated Recirc2D-style operator is the standard
nonsymmetric stress test; the shape to verify is that ILU-type
preconditioning collapses the iteration count and that CG (wrong method)
fails where GMRES succeeds.
"""

import os
import time

import numpy as np

from repro import galeri, mpi, solvers, tpetra

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NRANKS = 3
NX = NY = 24


def _measure():
    def body(comm):
        A = galeri.convection_diffusion_2d(NX, NY, comm, conv_x=20.0,
                                           conv_y=10.0)
        x_true = tpetra.Vector(A.row_map)
        x_true.randomize(seed=2)
        b = A @ x_true
        rows = []

        def run(label, fn):
            r = fn()
            err = (r.x - x_true).norm2() / x_true.norm2()
            rows.append((label, str(r.converged), r.iterations,
                         f"{err:.1e}"))

        run("GMRES(30)", lambda: solvers.gmres(A, b, tol=1e-10,
                                               maxiter=4000))
        run("GMRES(30) + ILU(0)", lambda: solvers.gmres(
            A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=4000))
        run("GMRES(30) + ILUT", lambda: solvers.gmres(
            A, b, prec=solvers.ILUT(A), tol=1e-10, maxiter=4000))
        run("BiCGStab + ILU(0)", lambda: solvers.bicgstab(
            A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=4000))
        run("TFQMR + ILU(0)", lambda: solvers.tfqmr(
            A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=4000))
        run("CG (wrong method)", lambda: solvers.cg(
            A, b, tol=1e-10, maxiter=300))
        return rows
    return mpi.run_spmd(body, NRANKS)[0]


def generate_report() -> str:
    rows = _measure()
    section = Section("C4b: nonsymmetric convection-diffusion solves")
    section.add(table(
        ["method", "converged", "iterations", "rel err"], rows,
        title=f"{NX}x{NY} upwinded convection-diffusion, conv=(20,10), "
              f"{NRANKS} ranks"))
    section.line(
        "GMRES and its transpose-free cousins converge; ILU-type "
        "preconditioning cuts iterations by an order of magnitude; CG, "
        "which assumes symmetry, fails to converge -- the standard "
        "qualitative picture for this operator family.")
    return section.render()


def test_gmres_ilu_convdiff(benchmark):
    def run():
        def body(comm):
            A = galeri.convection_diffusion_2d(NX, NY, comm, conv_x=20.0,
                                               conv_y=10.0)
            b = tpetra.Vector(A.row_map).putScalar(1.0)
            r = solvers.gmres(A, b, prec=solvers.ILU0(A), tol=1e-10,
                              maxiter=2000)
            return r.converged, r.iterations
        return mpi.run_spmd(body, NRANKS)[0]
    conv, _its = benchmark.pedantic(run, rounds=1, iterations=1)
    assert conv


# ----------------------------------------------------------------------
# measured wall time: thread vs process transport
# ----------------------------------------------------------------------
BACKEND_NRANKS = 4
# 96x96 -> 214 GMRES iterations, seconds of per-rank compute: the solve
# must be compute-bound for the backend comparison to measure transports
# rather than fork overhead
BACKEND_NX = BACKEND_NY = 96


def _solve_body(comm):
    A = galeri.convection_diffusion_2d(BACKEND_NX, BACKEND_NY, comm,
                                       conv_x=20.0, conv_y=10.0)
    b = tpetra.Vector(A.row_map).putScalar(1.0)
    r = solvers.gmres(A, b, prec=solvers.ILU0(A), tol=1e-10, maxiter=2000)
    return r.converged, r.iterations


def measure_backend_wall(nranks=BACKEND_NRANKS, repeats=3):
    """Median wall seconds per backend for the same GMRES+ILU(0) solve.

    The solver iteration is Python control flow over modest per-rank
    vectors: exactly the GIL-bound shape the process transport exists
    for.  Results must also agree across backends (checked here).
    """
    out = {"nranks": nranks, "cpu_count": os.cpu_count(),
           "nx": BACKEND_NX, "ny": BACKEND_NY}
    iters = {}
    for backend in ("thread", "process"):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = mpi.run_spmd(_solve_body, nranks, backend=backend)
            times.append(time.perf_counter() - t0)
            conv, its = res[0]
            assert conv
            iters[backend] = its
        out[backend + "_s"] = sorted(times)[len(times) // 2]
    assert iters["thread"] == iters["process"], iters  # same arithmetic
    out["iterations"] = iters["thread"]
    out["speedup"] = out["thread_s"] / out["process_s"]
    return out


def test_process_backend_speedup_at_4_ranks(benchmark):
    """Tentpole gate: the distributed solve must get real multicore
    speedup from the process transport (skipped on small runners, where
    fork/IPC overhead would measure the machine, not the transport)."""
    import pytest
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 CPU cores for a meaningful "
                    "thread-vs-process comparison")
    m = benchmark.pedantic(measure_backend_wall, rounds=1, iterations=1)
    assert m["speedup"] >= 2.0, (
        f"process backend only {m['speedup']:.2f}x over thread for "
        f"GMRES at nranks={m['nranks']} on {m['cpu_count']} cores")


if __name__ == "__main__":
    main(generate_report)
