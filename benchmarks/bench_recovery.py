"""Recovery cost: checkpoint overhead and time-to-recover.

Three measurements quantify what fault tolerance costs:

1. **Checkpoint epoch cost** -- bytes shipped to the ring partner and
   seconds per ``ctx.checkpoint()`` epoch, per array size;
2. **ODIN time-to-recover** -- wall-clock of an op during which a worker
   is killed (detection + shrink + restore + replay), against the same
   op fault-free;
3. **Solver time-to-recover** -- ``resilient_solve`` with a mid-solve
   rank kill against a fault-free run of the same CG solve.
"""

import time

import numpy as np

from repro import galeri, mpi, odin, solvers
from repro.mpi.errors import InjectedFault
from repro.tpetra import Operator, Vector

try:
    from .common import main, table
except ImportError:  # executed as a script, not as a package module
    from common import main, table

NWORKERS = 3
SIZES = [100_000, 1_000_000]
GRID = 24            # solver problem: GRID x GRID Laplacian
REPEATS = 3


def _ckpt_epochs():
    """(size, live arrays, bytes/epoch, best seconds/epoch) rows."""
    rows = []
    for n in SIZES:
        ctx = odin.init(NWORKERS, recover=True)
        try:
            x = odin.array(np.arange(float(n)))
            y = x * 2.0 + 1.0
            keep = (x, y)
            best, nbytes = float("inf"), 0
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                nbytes = ctx.checkpoint()
                best = min(best, time.perf_counter() - t0)
            rows.append((n, len(keep), nbytes, best))
        finally:
            odin.shutdown()
    return rows


def _odin_recover(n):
    """(fault-free op seconds, op-with-recovery seconds)."""
    ctx = odin.init(NWORKERS, recover=True)
    try:
        src = np.arange(float(n))
        z = odin.array(src) * 2.0
        ctx.checkpoint()
        z = z + 1.0                      # one op to replay
        killed = []

        @odin.local
        def op(a):
            if killed == ["arm"] and odin.worker_index() == 1:
                killed[:] = ["fired"]
                raise InjectedFault(2, 0, "bench kill")
            return a * 1.0

        t0 = time.perf_counter()
        op(z)
        base = time.perf_counter() - t0

        killed.append("arm")
        t0 = time.perf_counter()
        op(z)
        recov = time.perf_counter() - t0
        assert ctx.nworkers == NWORKERS - 1
        return base, recov
    finally:
        odin.shutdown()


class _KillerOp(Operator):
    def __init__(self, inner, comm, after, counts):
        self.inner, self.comm = inner, comm
        self.after, self.counts = after, counts

    def domain_map(self):
        return self.inner.domain_map()

    def range_map(self):
        return self.inner.range_map()

    def apply(self, x, y, trans=False):
        if self.after is not None and self.comm.context.rank == 1:
            k = self.counts.get(1, 0) + 1
            self.counts[1] = k
            if k > self.after:
                raise InjectedFault(1, k, "bench solver kill")
        return self.inner.apply(x, y, trans=trans)


def _solver_recover():
    """(fault-free seconds, with-kill seconds, restarts, iters)."""
    def run(after):
        counts = {}

        def body(comm):
            def make(c):
                A = galeri.laplace_2d(GRID, GRID, c)
                b = Vector(A.row_map)
                b.local_view = np.sin(
                    np.asarray(A.row_map.my_gids, dtype=float))
                return _KillerOp(A, c, after, counts), b

            t0 = time.perf_counter()
            res = solvers.resilient_solve(comm, make, method="cg",
                                          tol=1e-10, maxiter=2000,
                                          ckpt_every=25)
            return (time.perf_counter() - t0, res.restarts,
                    res.iterations, res.converged)

        out = mpi.run_spmd(body, NWORKERS, timeout=120,
                           fault_mode="failstop")
        live = [o for o in out if not isinstance(o, InjectedFault)]
        assert all(o[3] for o in live)
        return (max(o[0] for o in live), max(o[1] for o in live),
                max(o[2] for o in live))

    t_clean, _r0, it_clean = run(after=None)
    t_kill, restarts, it_kill = run(after=30)
    return t_clean, it_clean, t_kill, restarts, it_kill


def generate_report() -> str:
    out = []
    out.append(table(
        ["elements", "arrays", "bytes/epoch", "s/epoch"],
        [(n, k, f"{b:,}", f"{s:.4f}") for n, k, b, s in _ckpt_epochs()],
        title="Checkpoint epoch cost (partner copies, "
              f"{NWORKERS} workers)"))

    rows = []
    for n in SIZES:
        base, recov = _odin_recover(n)
        rows.append((n, f"{base:.4f}", f"{recov:.4f}",
                     f"{recov - base:.4f}"))
    out.append(table(
        ["elements", "op fault-free s", "op w/ recovery s",
         "time-to-recover s"],
        rows,
        title="ODIN time-to-recover (kill 1 worker mid-op: detect + "
              "shrink + restore + replay)"))

    t_clean, it_clean, t_kill, restarts, it_kill = _solver_recover()
    out.append(table(
        ["run", "seconds", "iterations", "restarts"],
        [("fault-free CG", f"{t_clean:.4f}", it_clean, 0),
         ("CG w/ rank kill", f"{t_kill:.4f}", it_kill, restarts)],
        title=f"Solver time-to-recover (2-D Laplacian {GRID}x{GRID}, "
              f"{NWORKERS} ranks, iterate ckpt every 25 its)"))
    return "\n".join(out)


if __name__ == "__main__":
    main(generate_report)
