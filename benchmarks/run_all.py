"""Regenerate every paper artifact's report (run: python -m benchmarks.run_all).

Collects the ``generate_report()`` of each bench module -- one per table,
figure, listing or claim in DESIGN.md's experiment index -- into a single
document (written to stdout and, with ``--out``, to a file).

``--check BASELINE.json`` compares this run's per-bench medians against a
baseline previously written with ``--json`` and reports regressions
outside an IQR-derived tolerance.  Warn-only by default (CI annotates
but stays green -- shared runners are noisy); ``--check-fail`` turns
regressions into a nonzero exit for local gating.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

MODULES = [
    "bench_table1_packages",
    "bench_fig1_control_plane",
    "bench_fig2_integration",
    "bench_finite_difference",
    "bench_jit_speedup",
    "bench_cpp_export",
    "bench_ufunc_scaling",
    "bench_weak_scaling",
    "bench_redistribution",
    "bench_loop_fusion",
    "bench_solvers_poisson",
    "bench_solvers_gmres",
    "bench_mapreduce",
    "bench_framework_pipeline",
    "bench_nranks",
    "bench_ablation_amg",
    "bench_ablation_collectives",
    "bench_ablation_rma",
    "bench_block_solves",
    "bench_chaos_overhead",
    "bench_recovery",
    "bench_obs_overhead",
]


def _iqr(values) -> float:
    if len(values) < 2:
        return 0.0
    q = statistics.quantiles(values, n=4, method="inclusive")
    return q[2] - q[0]


def check_regressions(stats: dict, baseline_path: str) -> list:
    """Compare this run's medians against a ``--json`` baseline.

    The tolerance per bench is ``max(3*max(IQRs), 25% of the baseline
    median, 50 ms)``: the IQR term absorbs machine noise measured on
    both sides, the relative term absorbs proportional jitter on fast
    benches, and the absolute floor keeps sub-100ms benches from
    flapping.  Returns the list of regressed bench names and prints an
    aligned table plus ``::warning`` annotation lines for GitHub CI.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh).get("benchmarks", {})
    rows = []
    regressions = []
    for name, cur in stats.items():
        base = baseline.get(name)
        if base is None:
            rows.append((name, None, cur["median_s"], None, "new"))
            continue
        tol = max(3.0 * max(base.get("iqr_s", 0.0), cur["iqr_s"]),
                  0.25 * base["median_s"], 0.05)
        delta = cur["median_s"] - base["median_s"]
        verdict = "ok"
        if delta > tol:
            verdict = "REGRESSION"
            regressions.append(name)
        rows.append((name, base["median_s"], cur["median_s"], tol, verdict))
    width = max(len(r[0]) for r in rows) + 2
    print(f"\nperf check vs {baseline_path}:")
    print(f"{'bench':<{width}}{'base (s)':>10}{'now (s)':>10}"
          f"{'tol (s)':>10}  verdict")
    for name, base_m, cur_m, tol, verdict in rows:
        base_txt = "-" if base_m is None else f"{base_m:.4f}"
        tol_txt = "-" if tol is None else f"{tol:.4f}"
        print(f"{name:<{width}}{base_txt:>10}{cur_m:>10.4f}"
              f"{tol_txt:>10}  {verdict}")
    for name in regressions:
        base_m = baseline[name]["median_s"]
        cur_m = stats[name]["median_s"]
        print(f"::warning title=perf regression::{name}: median "
              f"{base_m:.4f}s -> {cur_m:.4f}s")
    if not regressions:
        print("perf check: OK (no regressions outside tolerance)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=None,
                        help="also write the combined report to this file")
    parser.add_argument("--only", default=None,
                        help="comma-separated module suffixes to run")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write per-bench wall-clock stats (median + "
                             "IQR over --repeats runs) as JSON")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per bench for --json/"
                             "--check (default 3; the report uses the "
                             "last run)")
    parser.add_argument("--check", default=None, metavar="BASELINE.json",
                        help="compare per-bench medians against a --json "
                             "baseline; report regressions outside an "
                             "IQR-derived tolerance (warn-only)")
    parser.add_argument("--check-fail", action="store_true",
                        help="exit nonzero when --check finds regressions")
    args = parser.parse_args(argv)

    selected = MODULES
    if args.only:
        wanted = args.only.split(",")
        selected = [m for m in MODULES if any(w in m for w in wanted)]

    repeats = max(args.repeats, 1) if (args.json or args.check) else 1
    chunks = []
    stats = {}
    for name in selected:
        module = __import__(f"benchmarks.{name}", fromlist=["generate_report"])
        times = []
        report = ""
        for _ in range(repeats):
            t0 = time.perf_counter()
            try:
                report = module.generate_report()
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                report = f"## {name}\n\nFAILED: {exc!r}\n"
            times.append(time.perf_counter() - t0)
        stats[name] = {
            "median_s": round(statistics.median(times), 4),
            "iqr_s": round(_iqr(times), 4),
            "runs": len(times),
            "times_s": [round(t, 4) for t in times],
        }
        chunks.append(report + f"\n(generated in {times[-1]:.1f}s)\n")
        print(chunks[-1])
    combined = "\n".join(chunks)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(combined)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"benchmarks": stats}, fh, indent=2)
            fh.write("\n")
    if args.check:
        regressions = check_regressions(stats, args.check)
        if regressions and args.check_fail:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
