"""Regenerate every paper artifact's report (run: python -m benchmarks.run_all).

Collects the ``generate_report()`` of each bench module -- one per table,
figure, listing or claim in DESIGN.md's experiment index -- into a single
document (written to stdout and, with ``--out``, to a file).
"""

from __future__ import annotations

import argparse
import sys
import time

MODULES = [
    "bench_table1_packages",
    "bench_fig1_control_plane",
    "bench_fig2_integration",
    "bench_finite_difference",
    "bench_jit_speedup",
    "bench_cpp_export",
    "bench_ufunc_scaling",
    "bench_weak_scaling",
    "bench_redistribution",
    "bench_loop_fusion",
    "bench_solvers_poisson",
    "bench_solvers_gmres",
    "bench_mapreduce",
    "bench_framework_pipeline",
    "bench_nranks",
    "bench_ablation_amg",
    "bench_ablation_collectives",
    "bench_ablation_rma",
    "bench_block_solves",
    "bench_chaos_overhead",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=None,
                        help="also write the combined report to this file")
    parser.add_argument("--only", default=None,
                        help="comma-separated module suffixes to run")
    args = parser.parse_args(argv)

    selected = MODULES
    if args.only:
        wanted = args.only.split(",")
        selected = [m for m in MODULES if any(w in m for w in wanted)]

    chunks = []
    for name in selected:
        module = __import__(f"benchmarks.{name}", fromlist=["generate_report"])
        t0 = time.perf_counter()
        try:
            report = module.generate_report()
        except Exception as exc:  # noqa: BLE001 - collect, don't die
            report = f"## {name}\n\nFAILED: {exc!r}\n"
        dt = time.perf_counter() - t0
        chunks.append(report + f"\n(generated in {dt:.1f}s)\n")
        print(chunks[-1])
    combined = "\n".join(chunks)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(combined)
    return 0


if __name__ == "__main__":
    sys.exit(main())
