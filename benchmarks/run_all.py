"""Regenerate every paper artifact's report (run: python -m benchmarks.run_all).

Collects the ``generate_report()`` of each bench module -- one per table,
figure, listing or claim in DESIGN.md's experiment index -- into a single
document (written to stdout and, with ``--out``, to a file).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

MODULES = [
    "bench_table1_packages",
    "bench_fig1_control_plane",
    "bench_fig2_integration",
    "bench_finite_difference",
    "bench_jit_speedup",
    "bench_cpp_export",
    "bench_ufunc_scaling",
    "bench_weak_scaling",
    "bench_redistribution",
    "bench_loop_fusion",
    "bench_solvers_poisson",
    "bench_solvers_gmres",
    "bench_mapreduce",
    "bench_framework_pipeline",
    "bench_nranks",
    "bench_ablation_amg",
    "bench_ablation_collectives",
    "bench_ablation_rma",
    "bench_block_solves",
    "bench_chaos_overhead",
    "bench_recovery",
]


def _iqr(values) -> float:
    if len(values) < 2:
        return 0.0
    q = statistics.quantiles(values, n=4, method="inclusive")
    return q[2] - q[0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=None,
                        help="also write the combined report to this file")
    parser.add_argument("--only", default=None,
                        help="comma-separated module suffixes to run")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write per-bench wall-clock stats (median + "
                             "IQR over --repeats runs) as JSON")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per bench for --json "
                             "(default 3; the report uses the last run)")
    args = parser.parse_args(argv)

    selected = MODULES
    if args.only:
        wanted = args.only.split(",")
        selected = [m for m in MODULES if any(w in m for w in wanted)]

    repeats = max(args.repeats, 1) if args.json else 1
    chunks = []
    stats = {}
    for name in selected:
        module = __import__(f"benchmarks.{name}", fromlist=["generate_report"])
        times = []
        report = ""
        for _ in range(repeats):
            t0 = time.perf_counter()
            try:
                report = module.generate_report()
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                report = f"## {name}\n\nFAILED: {exc!r}\n"
            times.append(time.perf_counter() - t0)
        stats[name] = {
            "median_s": round(statistics.median(times), 4),
            "iqr_s": round(_iqr(times), 4),
            "runs": len(times),
            "times_s": [round(t, 4) for t in times],
        }
        chunks.append(report + f"\n(generated in {times[-1]:.1f}s)\n")
        print(chunks[-1])
    combined = "\n".join(chunks)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(combined)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"benchmarks": stats}, fh, indent=2)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
