"""L5 -- Python algorithms consumed from C++ (paper section IV-D).

Exports the Python sum, compiles the paper's C++ listing against it, and
times the exported kernel from the C++ side against the same loop written
natively in C++ -- the claim being that the Python-specified algorithm
carries no penalty once compiled.
"""

import os
import tempfile

import numpy as np

from repro.seamless import (compile_and_run_cpp, compiler_available,
                            export_cpp)

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

ALGORITHM = '''
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res
'''

BENCH_CPP = r'''
#include <chrono>
#include <cstdio>
#include <vector>
#include "seamless_export.hpp"

static double native_sum(const std::vector<double>& v) {
    double res = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) res += v[i];
    return res;
}

int main() {
    const int N = 5000000;
    std::vector<double> darr(N);
    for (int i = 0; i < N; ++i) darr[i] = 1.0 / (i + 1);

    auto t0 = std::chrono::steady_clock::now();
    double a = seamless::numpy::sum(darr);
    auto t1 = std::chrono::steady_clock::now();
    double b = native_sum(darr);
    auto t2 = std::chrono::steady_clock::now();

    double py_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    double cc_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    printf("%.6f %.6f %.3f %.3f\n", a, b, py_ms, cc_ms);
    return 0;
}
'''


def _measure():
    workdir = tempfile.mkdtemp(prefix="bench_cpp_")
    exports = export_cpp(ALGORITHM, {"sum": ["float64[]"]}, workdir,
                         name="seamless_export")
    out = compile_and_run_cpp(BENCH_CPP, exports,
                              os.path.join(workdir, "build"))
    a, b, py_ms, cc_ms = (float(tok) for tok in out.split())
    assert abs(a - b) < 1e-9
    return a, py_ms, cc_ms


def generate_report() -> str:
    if not compiler_available():
        return Section("L5: Python algorithms from C++").line(
            "SKIPPED: no C/C++ compiler available.").render()
    value, py_ms, cc_ms = _measure()
    section = Section("L5: Python algorithm consumed from C++ "
                      "(section IV-D)")
    section.add(table(
        ["implementation", "result", "time ms"],
        [("seamless::numpy::sum (from Python)", f"{value:.6f}",
          f"{py_ms:.3f}"),
         ("hand-written C++ loop", f"{value:.6f}", f"{cc_ms:.3f}")],
        title="5,000,000-element std::vector<double>, timed inside the "
              "C++ program"))
    ratio = py_ms / max(cc_ms, 1e-9)
    section.line(
        f"The Python-specified algorithm runs at native speed from C++ "
        f"({ratio:.2f}x the hand-written loop) and returns bit-identical "
        f"results; the paper's int-array and vector<double> overloads "
        f"both resolve.")
    return section.render()


def test_cpp_export_runs(benchmark):
    if not compiler_available():
        import pytest
        pytest.skip("no compiler")
    value, _py, _cc = benchmark.pedantic(_measure, rounds=1, iterations=1)
    assert value > 15.0  # harmonic number H_5e6 ~ 16.2


if __name__ == "__main__":
    main(generate_report)
