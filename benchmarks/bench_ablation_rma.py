"""Ablation A3 -- one-sided (RMA) vs two-sided halo exchange.

The same 1-D halo pattern implemented three ways over the substrate:
matched send/recv pairs, persistent-plan Import (Tpetra style), and
one-sided Put with fence synchronization.  Message counts, synchronization
rounds, and projected latency are compared -- RMA trades per-neighbor
message matching for two collective fences.
"""

import numpy as np

from repro import mpi, tpetra
from repro.mpi import COMMODITY_CLUSTER

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

P = 8
NLOCAL = 5_000
STEPS = 10


def _two_sided(comm):
    local = np.full(NLOCAL, float(comm.rank))
    left = comm.rank - 1 if comm.rank > 0 else None
    right = comm.rank + 1 if comm.rank + 1 < comm.size else None
    for _step in range(STEPS):
        if right is not None:
            comm.send(local[-1], right, tag=0)
        if left is not None:
            comm.send(local[0], left, tag=1)
        lo = comm.recv(left, tag=0) if left is not None else local[0]
        hi = comm.recv(right, tag=1) if right is not None else local[-1]
        local[0] += 1e-16 * lo          # consume halos
        local[-1] += 1e-16 * hi


def _import_plan(comm):
    n = NLOCAL * comm.size
    owned = tpetra.Map.create_contiguous(n, comm)
    lo, hi = owned.min_my_gid, owned.max_my_gid
    ghosted = list(range(lo, hi + 1))
    if lo > 0:
        ghosted.append(lo - 1)
    if hi < n - 1:
        ghosted.append(hi + 1)
    gmap = tpetra.Map(n, np.array(ghosted), comm, kind="arbitrary")
    imp = tpetra.Import(owned, gmap)
    x = tpetra.Vector(owned).putScalar(float(comm.rank))
    g = tpetra.Vector(gmap)
    for _step in range(STEPS):
        g.import_from(x, imp)


def _one_sided(comm):
    # window holds [left_halo, right_halo]
    halos = np.zeros(2)
    win = mpi.Win.Create(halos, comm)
    local = np.full(NLOCAL, float(comm.rank))
    left = comm.rank - 1 if comm.rank > 0 else None
    right = comm.rank + 1 if comm.rank + 1 < comm.size else None
    win.Fence()
    for _step in range(STEPS):
        if right is not None:
            win.Put(local[-1:], right, target_offset=0)
        if left is not None:
            win.Put(local[:1], left, target_offset=1)
        win.Fence()
        local[0] += 1e-16 * halos[0]
        local[-1] += 1e-16 * halos[1]
    win.Free()


def _traffic(fn):
    def body(comm):
        before = comm.traffic_snapshot()
        fn(comm)
        delta = comm.traffic_snapshot() - before
        return delta.sends, delta.bytes_sent
    results = mpi.run_spmd(body, P)
    return (sum(r[0] for r in results), sum(r[1] for r in results))


def _measure():
    rows = []
    for label, fn, sync_rounds in (
            ("two-sided send/recv", _two_sided, 0),
            ("Import plan (Tpetra)", _import_plan, 0),
            ("one-sided Put + Fence", _one_sided, STEPS + 1)):
        msgs, nbytes = _traffic(fn)
        # fences are barriers: log2(P) rounds each on the critical path
        import math
        fence_lat = sync_rounds * math.ceil(math.log2(P)) * \
            COMMODITY_CLUSTER.alpha
        proj = COMMODITY_CLUSTER.comm_time(msgs // P, nbytes // P) + \
            fence_lat
        rows.append((label, msgs, f"{nbytes:,}", sync_rounds,
                     f"{proj * 1e6 / STEPS:.1f}"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("A3: halo exchange -- one-sided vs two-sided vs "
                      "Import plans")
    section.add(table(
        ["mechanism", "total msgs", "bytes", "fences",
         "proj us/step/rank"], rows,
        title=f"{P} ranks, {STEPS} halo steps, {NLOCAL:,}-element local "
              f"arrays (1 boundary value per side)"))
    section.line(
        "All three move the same payload (one scalar per boundary). "
        "Two-sided and plan-based exchange pay per-message matching; RMA "
        "pays two fence barriers per step instead -- cheaper only when a "
        "rank exchanges with many neighbors per epoch, which is exactly "
        "MPI folklore, recovered here from measured counts.")
    return section.render()


def test_all_mechanisms_same_payload_order(benchmark):
    def run():
        return [_traffic(fn)[1] for fn in (_two_sided, _one_sided)]
    two, one = benchmark.pedantic(run, rounds=1, iterations=1)
    # same scalars on the wire (pickle vs raw framing differs, so compare
    # within an order of magnitude)
    assert one <= two * 10 and two <= one * 50


if __name__ == "__main__":
    main(generate_report)
