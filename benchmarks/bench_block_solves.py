"""Ablation A4 -- pseudo-block CG vs one-at-a-time solves (multi-RHS).

The Belos argument: iterating all right-hand sides together amortizes the
distributed kernels and, crucially, fuses the global reductions -- one
allreduce of k scalars instead of k allreduces of one.  The bench measures
both wall time and the allreduce count (latency on a cluster scales with
the count, not the payload).
"""

import time

import numpy as np

from repro import galeri, mpi, solvers, tpetra
from repro.mpi import COMMODITY_CLUSTER

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NRANKS = 2
NX = NY = 20
NVECS = [1, 2, 4, 8]


def _run(comm, nvec):
    A = galeri.laplace_2d(NX, NY, comm)
    Xt = tpetra.MultiVector(A.row_map, nvec)
    Xt.randomize(seed=2)
    B = A @ Xt

    before = comm.traffic_snapshot()
    t0 = time.perf_counter()
    blk = solvers.block_cg(A, B, tol=1e-10, maxiter=2000)
    t_block = time.perf_counter() - t0
    blk_msgs = (comm.traffic_snapshot() - before).sends

    before = comm.traffic_snapshot()
    t0 = time.perf_counter()
    for j in range(nvec):
        solvers.cg(A, B.vector(j).copy(), tol=1e-10, maxiter=2000)
    t_seq = time.perf_counter() - t0
    seq_msgs = (comm.traffic_snapshot() - before).sends
    return (bool(blk.converged.all()), blk.iterations, t_block, blk_msgs,
            t_seq, seq_msgs)


def _measure():
    rows = []
    for nvec in NVECS:
        conv, its, t_blk, m_blk, t_seq, m_seq = mpi.run_spmd(
            lambda c, n=nvec: _run(c, n), NRANKS)[0]
        assert conv
        lat_blk = m_blk * COMMODITY_CLUSTER.alpha
        lat_seq = m_seq * COMMODITY_CLUSTER.alpha
        rows.append((nvec, its, f"{t_blk * 1e3:.0f}", f"{t_seq * 1e3:.0f}",
                     m_blk, m_seq, f"{lat_seq / max(lat_blk, 1e-12):.1f}x"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("A4: pseudo-block CG vs sequential single-RHS "
                      "solves")
    section.add(table(
        ["RHS", "block its", "block ms", "seq ms", "block msgs",
         "seq msgs", "latency saving"], rows,
        title=f"{NX}x{NY} Poisson, {NRANKS} ranks, tol 1e-10 "
              f"(msgs = rank-0 sends; latency projected per message)"))
    section.line(
        "Iteration counts match the hardest single system, while the "
        "message count stays ~flat in the RHS count (reductions fused "
        "into one allreduce per iteration) -- on a latency-bound cluster "
        "the projected saving grows linearly with the block width, which "
        "is precisely the Belos pseudo-block design argument.")
    return section.render()


def test_block_messages_flat_in_nrhs(benchmark):
    def run():
        r1 = mpi.run_spmd(lambda c: _run(c, 1), NRANKS)[0]
        r8 = mpi.run_spmd(lambda c: _run(c, 8), NRANKS)[0]
        return r1, r8
    r1, r8 = benchmark.pedantic(run, rounds=1, iterations=1)
    blk_msgs_1, blk_msgs_8 = r1[3], r8[3]
    seq_msgs_8 = r8[5]
    # block traffic grows far slower than sequential traffic
    assert blk_msgs_8 < seq_msgs_8
    assert blk_msgs_8 < 3 * blk_msgs_1


if __name__ == "__main__":
    main(generate_report)
