"""C1 -- "parallel array computations as straightforward as serial":
scaling of distributed ufunc evaluation.

The thread runtime shares one CPU, so raw wall time cannot show scaling;
instead the bench measures the actual per-worker work and communication
for 1..16 workers and projects strong-scaling times with the alpha-beta
cost model -- the communication *counts* are exact, only the rates are
modeled.

Since the multiprocess transport landed, the projection is no longer the
only story: :func:`measure_backend_wall` runs the same pipeline as real
SPMD wall time on both backends.  The per-rank work is a Python-level
loop of ufunc applications -- the interpreter glue between calls holds
the GIL, so rank threads serialize while rank processes genuinely
overlap; on a multicore host the process backend shows the speedup the
cost model has been projecting.
"""

import os
import time

import numpy as np

from repro import mpi, odin
from repro.mpi import COMMODITY_CLUSTER
from repro.odin.context import OdinContext

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 1_000_000
WORKER_COUNTS = [1, 2, 4, 8, 16]
FLOPS_PER_ELEMENT = 9.0  # sqrt(u*u+v*v)*2-1: ~9 flops with sqrt weight


def _traffic_for(w):
    with OdinContext(w) as ctx:
        u = odin.random(N, ctx=ctx, seed=1)
        v = odin.random(N, ctx=ctx, seed=2)
        ctx.reset_counters()
        with odin.lazy():
            expr = odin.sqrt(u * u + v * v) * 2.0 - 1.0
        _out = odin.evaluate(expr, use_seamless=False)
        cm, cb = ctx.control_traffic()
        wm, wb = ctx.worker_traffic()
    return cm + wm, cb + wb


def _measure():
    model = COMMODITY_CLUSTER
    t1 = None
    rows = []
    for w in WORKER_COUNTS:
        msgs, nbytes = _traffic_for(w)
        compute = model.compute_time(N * FLOPS_PER_ELEMENT / w)
        comm = model.comm_time(msgs, nbytes)
        total = compute + comm
        if t1 is None:
            t1 = total
        rows.append((w, msgs, f"{nbytes:,}", f"{compute * 1e3:.2f}",
                     f"{comm * 1e6:.0f}", f"{total * 1e3:.2f}",
                     f"{t1 / total:.2f}", f"{t1 / total / w * 100:.0f}%"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("C1: strong scaling of a fused distributed "
                      "expression (projected)")
    section.add(table(
        ["workers", "messages", "bytes", "compute ms", "comm us",
         "total ms", "speedup", "efficiency"], rows,
        title=f"sqrt(u*u+v*v)*2-1, N = {N:,}; traffic measured, times "
              f"projected on {COMMODITY_CLUSTER.name}"))
    section.line(
        "The expression is embarrassingly parallel: measured "
        "communication stays in the control plane (kilobytes), so "
        "projected efficiency stays near 100% out to 16 workers -- the "
        "serial NumPy code needed zero changes to get there, which is "
        "the section III-D claim.")
    m = measure_backend_wall(repeats=1)
    section.add(table(
        ["backend", "wall s"],
        [("thread", f"{m['thread_s']:.3f}"),
         ("process", f"{m['process_s']:.3f}"),
         ("speedup", f"{m['speedup']:.2f}x")],
        title=f"measured wall time, same pipeline, nranks="
              f"{m['nranks']} on {m['cpu_count']} CPU core(s)"))
    section.line(
        "The wall-time table is measured, not projected: on a multicore "
        "host the process transport escapes the GIL and approaches the "
        "projected scaling; on a single core it can only add fork and "
        "IPC overhead, and the honest number shows that too.")
    return section.render()


# ----------------------------------------------------------------------
# measured wall time: thread vs process transport
# ----------------------------------------------------------------------
BACKEND_NRANKS = 4
PIPELINE_ITERS = 4000  # ~1 s of serialized compute: dwarfs fork cost
CHUNK = 20_000  # elements per ufunc call: interpreter glue is visible


def _pipeline_body(comm, n, iters):
    """The C1 expression, evaluated as a per-rank Python/ufunc loop."""
    lo = comm.rank * (n // comm.size)
    u = np.linspace(0.0, 1.0, CHUNK) + lo
    v = np.linspace(1.0, 2.0, CHUNK)
    acc = 0.0
    for _ in range(iters):
        w = np.sqrt(u * u + v * v) * 2.0 - 1.0
        acc += float(w[0])
    return acc


def measure_backend_wall(nranks=BACKEND_NRANKS, iters=PIPELINE_ITERS,
                         repeats=3):
    """Median wall seconds per backend for the same SPMD pipeline."""
    out = {"nranks": nranks, "cpu_count": os.cpu_count()}
    for backend in ("thread", "process"):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = mpi.run_spmd(_pipeline_body, nranks, args=(N, iters),
                               backend=backend)
            times.append(time.perf_counter() - t0)
            assert len(res) == nranks
        out[backend + "_s"] = sorted(times)[len(times) // 2]
    out["speedup"] = out["thread_s"] / out["process_s"]
    return out


def test_process_backend_speedup_at_4_ranks(benchmark):
    """The tentpole gate: real multicore speedup, not a projection.

    Meaningful only where 4 ranks can actually run concurrently; on
    smaller runners the process backend's fork overhead dominates and
    the assertion would measure the machine, not the transport.
    """
    import pytest
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 CPU cores for a meaningful "
                    "thread-vs-process comparison")
    m = benchmark.pedantic(measure_backend_wall, rounds=1, iterations=1)
    assert m["speedup"] >= 2.0, (
        f"process backend only {m['speedup']:.2f}x over thread at "
        f"nranks={m['nranks']} on {m['cpu_count']} cores")


def test_scaling_traffic_is_flat(benchmark):
    def run():
        return {w: _traffic_for(w) for w in (2, 8)}
    traffic = benchmark.pedantic(run, rounds=1, iterations=1)
    # bytes grow at most modestly with worker count (control plane only)
    assert traffic[8][1] < 20 * traffic[2][1]
    assert traffic[8][1] < 8 * N  # never anywhere near the payload


if __name__ == "__main__":
    main(generate_report)
