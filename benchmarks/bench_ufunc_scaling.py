"""C1 -- "parallel array computations as straightforward as serial":
scaling of distributed ufunc evaluation.

The thread runtime shares one CPU, so raw wall time cannot show scaling;
instead the bench measures the actual per-worker work and communication
for 1..16 workers and projects strong-scaling times with the alpha-beta
cost model -- the communication *counts* are exact, only the rates are
modeled.
"""

import numpy as np

from repro import odin
from repro.mpi import COMMODITY_CLUSTER
from repro.odin.context import OdinContext

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 1_000_000
WORKER_COUNTS = [1, 2, 4, 8, 16]
FLOPS_PER_ELEMENT = 9.0  # sqrt(u*u+v*v)*2-1: ~9 flops with sqrt weight


def _traffic_for(w):
    with OdinContext(w) as ctx:
        u = odin.random(N, ctx=ctx, seed=1)
        v = odin.random(N, ctx=ctx, seed=2)
        ctx.reset_counters()
        with odin.lazy():
            expr = odin.sqrt(u * u + v * v) * 2.0 - 1.0
        _out = odin.evaluate(expr, use_seamless=False)
        cm, cb = ctx.control_traffic()
        wm, wb = ctx.worker_traffic()
    return cm + wm, cb + wb


def _measure():
    model = COMMODITY_CLUSTER
    t1 = None
    rows = []
    for w in WORKER_COUNTS:
        msgs, nbytes = _traffic_for(w)
        compute = model.compute_time(N * FLOPS_PER_ELEMENT / w)
        comm = model.comm_time(msgs, nbytes)
        total = compute + comm
        if t1 is None:
            t1 = total
        rows.append((w, msgs, f"{nbytes:,}", f"{compute * 1e3:.2f}",
                     f"{comm * 1e6:.0f}", f"{total * 1e3:.2f}",
                     f"{t1 / total:.2f}", f"{t1 / total / w * 100:.0f}%"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("C1: strong scaling of a fused distributed "
                      "expression (projected)")
    section.add(table(
        ["workers", "messages", "bytes", "compute ms", "comm us",
         "total ms", "speedup", "efficiency"], rows,
        title=f"sqrt(u*u+v*v)*2-1, N = {N:,}; traffic measured, times "
              f"projected on {COMMODITY_CLUSTER.name}"))
    section.line(
        "The expression is embarrassingly parallel: measured "
        "communication stays in the control plane (kilobytes), so "
        "projected efficiency stays near 100% out to 16 workers -- the "
        "serial NumPy code needed zero changes to get there, which is "
        "the section III-D claim.")
    return section.render()


def test_scaling_traffic_is_flat(benchmark):
    def run():
        return {w: _traffic_for(w) for w in (2, 8)}
    traffic = benchmark.pedantic(run, rounds=1, iterations=1)
    # bytes grow at most modestly with worker count (control plane only)
    assert traffic[8][1] < 20 * traffic[2][1]
    assert traffic[8][1] < 8 * N  # never anywhere near the payload


if __name__ == "__main__":
    main(generate_report)
