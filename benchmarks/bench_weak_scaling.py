"""C1b -- weak scaling of the distributed solver kernel.

Complement to the strong-scaling benches: the problem grows with the
worker count (fixed rows per rank), the regime clusters actually run in.
Halo traffic per rank should stay constant, so projected efficiency stays
flat -- the signature of a well-decomposed stencil code.
"""

import numpy as np

from repro import galeri, mpi, tpetra
from repro.mpi import COMMODITY_CLUSTER

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

ROWS_PER_RANK = 2048        # fixed local work
RANKS = [1, 2, 4, 8, 16]


def _spmv_traffic(p):
    """One SpMV on a 1-D Laplacian with ROWS_PER_RANK rows per rank."""
    n = ROWS_PER_RANK * p

    def body(comm):
        A = galeri.laplace_1d(n, comm)
        x = tpetra.Vector(A.row_map).putScalar(1.0)
        before = comm.traffic_snapshot()
        _y = A @ x
        delta = comm.traffic_snapshot() - before
        return delta.sends, delta.bytes_sent
    results = mpi.run_spmd(body, p)
    total_msgs = sum(r[0] for r in results)
    total_bytes = sum(r[1] for r in results)
    max_rank_msgs = max(r[0] for r in results)
    return total_msgs, total_bytes, max_rank_msgs


def _measure():
    model = COMMODITY_CLUSTER
    flops_per_rank = 2 * 3 * ROWS_PER_RANK  # 3-point stencil
    t1 = None
    rows = []
    for p in RANKS:
        msgs, nbytes, max_msgs = _spmv_traffic(p)
        compute = model.compute_time(flops_per_rank)   # constant by design
        comm = model.comm_time(max_msgs, nbytes // max(p, 1))
        total = compute + comm
        if t1 is None:
            t1 = total
        rows.append((p, f"{ROWS_PER_RANK * p:,}", msgs, f"{nbytes:,}",
                     max_msgs, f"{total * 1e6:.1f}",
                     f"{t1 / total * 100:.0f}%"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("C1b: weak scaling of a distributed SpMV "
                      "(fixed rows per rank, projected)")
    section.add(table(
        ["ranks", "global rows", "halo msgs", "halo bytes",
         "max msgs/rank", "proj time us", "efficiency"], rows,
        title=f"1-D Laplacian, {ROWS_PER_RANK:,} rows/rank; traffic "
              f"measured, times projected on {COMMODITY_CLUSTER.name}"))
    section.line(
        "Per-rank halo traffic is constant (two neighbor exchanges), so "
        "projected weak-scaling efficiency stays ~flat as the problem and "
        "machine grow together -- the regime the paper's '8-core desktop "
        "to 100-node cluster' narrative assumes.")
    return section.render()


def test_weak_scaling_per_rank_traffic_constant(benchmark):
    def run():
        return {p: _spmv_traffic(p)[2] for p in (2, 8)}
    max_msgs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max_msgs[8] <= max_msgs[2] + 1   # O(1) per-rank messages


if __name__ == "__main__":
    main(generate_report)
