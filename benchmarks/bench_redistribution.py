"""C2 -- ufuncs on non-conformable arrays: strategy selection.

"ODIN will choose a strategy that will minimize communication, while
allowing the knowledgeable user to modify its behavior via Python context
managers."  For several distribution pairs this bench prices every
strategy in *measured* bytes, and shows the auto chooser always picks the
cheapest plan.
"""

import numpy as np

from repro import odin
from repro.odin.context import OdinContext
from repro.odin.distribution import (BlockCyclicDistribution,
                                     BlockDistribution, CyclicDistribution)

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 60_000
W = 4

PAIRS = [
    ("block vs block (conformable)",
     lambda: BlockDistribution((N,), 0, W),
     lambda: BlockDistribution((N,), 0, W)),
    ("block vs cyclic",
     lambda: BlockDistribution((N,), 0, W),
     lambda: CyclicDistribution((N,), 0, W)),
    ("cyclic vs block-cyclic(64)",
     lambda: CyclicDistribution((N,), 0, W),
     lambda: BlockCyclicDistribution((N,), 0, W, block_size=64)),
    ("block vs nonuniform block",
     lambda: BlockDistribution((N,), 0, W),
     lambda: BlockDistribution((N,), 0, W,
                               counts=[N // 2, N // 6, N // 6,
                                       N - N // 2 - 2 * (N // 6)])),
]


def _measured_bytes(ctx, a, b, strategy_name):
    ctx.reset_counters()
    with odin.strategy(strategy_name):
        _c = a + b
    _m, nbytes = ctx.worker_traffic()
    return nbytes


def _measure():
    rows = []
    with OdinContext(W) as ctx:
        for label, mk_a, mk_b in PAIRS:
            da, db = mk_a(), mk_b()
            a = odin.random(N, ctx=ctx, seed=1).redistribute(da)
            b = odin.random(N, ctx=ctx, seed=2).redistribute(db)
            costs = {}
            for strat in ("left", "right", "block"):
                costs[strat] = _measured_bytes(ctx, a, b, strat)
            chosen, _ta, _tb = odin.choose_strategy(da, db)
            auto_bytes = _measured_bytes(ctx, a, b, "auto")
            best = min(costs.values())
            rows.append((label, f"{costs['left']:,}",
                         f"{costs['right']:,}", f"{costs['block']:,}",
                         chosen, f"{auto_bytes:,}",
                         "yes" if auto_bytes <= best + 1024 else "NO"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("C2: redistribution strategy selection")
    section.add(table(
        ["operand distributions", "left B", "right B", "block B",
         "auto picks", "auto B", "optimal?"], rows,
        title=f"a + b, N = {N:,} float64, {W} workers "
              f"(bytes measured on the wire)"))
    section.line(
        "The chooser prices each plan from distribution metadata alone "
        "and its pick matches the cheapest measured plan in every case; "
        "`with odin.strategy(...)` overrides it, as the paper specifies.")
    return section.render()


def test_auto_strategy_is_optimal(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    assert all(row[-1] == "yes" for row in rows)


if __name__ == "__main__":
    main(generate_report)
