"""F2 -- Fig. 2 of the paper: component relationships.

Each of the three packages is standalone; ODIN can additionally use
Seamless (fused native kernels) and PyTrilinos (distributed solvers).
This bench exercises each edge of the figure and reports what ran.
"""

import time

import numpy as np

from repro import mpi, odin, tpetra, galeri, solvers
from repro.odin.context import OdinContext
from repro.seamless import compiler_available, jit

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table


def _standalone_odin():
    with OdinContext(4) as ctx:
        x = odin.linspace(0, 1, 50_000, ctx=ctx)
        return float((odin.sin(x) ** 2 + odin.cos(x) ** 2).mean())


def _standalone_trilinos():
    def body(comm):
        A = galeri.laplace_2d(16, 16, comm)
        b = tpetra.Vector(A.row_map).putScalar(1.0)
        return solvers.cg(A, b, prec=solvers.MLPreconditioner(A),
                          tol=1e-10).iterations
    return mpi.run_spmd(body, 4)[0]


def _standalone_seamless():
    @jit
    def poly(x):
        acc = 0.0
        for i in range(len(x)):
            acc += x[i] * x[i] - x[i]
        return acc

    data = np.random.default_rng(0).random(100_000)
    return float(poly(data))


def _odin_uses_seamless():
    with OdinContext(4) as ctx:
        u = odin.random(100_000, ctx=ctx, seed=5)
        v = odin.random(100_000, ctx=ctx, seed=6)
        with odin.lazy():
            expr = odin.sqrt(u * u + v * v) * 0.5
        fused = odin.evaluate(expr, use_seamless=True)
        return float(fused.sum())


def _odin_uses_trilinos():
    with OdinContext(4) as ctx:
        b = odin.ones(24 * 24, ctx=ctx)
        _x, info = odin.trilinos.solve(
            "Laplace2D", b, matrix_params={"nx": 24, "ny": 24},
            solver="CG", preconditioner="Jacobi", tol=1e-10)
        return info["iterations"]


EDGES = [
    ("ODIN standalone", _standalone_odin,
     "sin^2+cos^2 mean == 1"),
    ("PyTrilinos standalone", _standalone_trilinos,
     "AMG-CG iterations on 16x16 Poisson"),
    ("Seamless standalone", _standalone_seamless,
     "jit polynomial reduction"),
    ("ODIN -> Seamless", _odin_uses_seamless,
     "lazy expr fused to a native kernel"),
    ("ODIN -> PyTrilinos", _odin_uses_trilinos,
     "DistArray rhs solved by CG+Jacobi"),
]


def _measure():
    rows = []
    for name, fn, what in EDGES:
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        rows.append((name, what, f"{value:.6g}", f"{dt:.3f}"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("F2: Fig. 2 -- component relationship")
    section.add(table(["edge", "what ran", "result", "seconds"], rows))
    note = "Seamless native fusion active." if compiler_available() else \
        "No C compiler: Seamless edges used the interpreted fallback."
    section.line(
        "Every edge of Fig. 2 is executable: the packages work standalone "
        "and compose. " + note)
    return section.render()


def test_fig2_all_edges_run(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    assert len(rows) == len(EDGES)
    assert abs(float(rows[0][2]) - 1.0) < 1e-12  # sin^2+cos^2 == 1


if __name__ == "__main__":
    main(generate_report)
