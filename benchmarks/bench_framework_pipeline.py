"""C7 -- the Discussion-section pipeline: ODIN init -> PyTrilinos solver
with a Python model callback -> Seamless-compiled callback.

Reports time per nonlinear solve with the model callback interpreted vs
Seamless-compiled, at growing problem sizes: the callback share of the
runtime is what compilation removes.
"""

import numpy as np

from repro import core, mpi

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NRANKS = 2
SIZES = [10_000, 50_000, 200_000]


def _measure():
    rows = []
    for n in SIZES:
        def body(comm):
            plain = core.newton_krylov_pipeline(comm, n,
                                                compile_callback=False)
            fast = core.newton_krylov_pipeline(comm, n,
                                               compile_callback=True)
            return plain, fast
        plain, fast = mpi.run_spmd(body, NRANKS, args=())[0]
        assert plain.converged and fast.converged
        speedup = plain.callback_time / max(fast.callback_time, 1e-9)
        rows.append((f"{n:,}", plain.newton_iterations,
                     f"{plain.callback_time * 1e3:.1f}",
                     f"{fast.callback_time * 1e3:.1f}",
                     f"{speedup:.0f}x",
                     f"{plain.total_time:.2f}",
                     f"{fast.total_time:.2f}"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("C7: the full-framework pipeline "
                      "(Discussion section)")
    section.add(table(
        ["points", "Newton its", "py callback ms", "jit callback ms",
         "callback speedup", "py total s", "jit total s"], rows,
        title=f"1-D Bratu, Newton + GMRES/ILU, model callback "
              f"lam*exp(u) element-at-a-time, {NRANKS} ranks"))
    section.line(
        "The model evaluation -- prototyped as a plain Python loop -- is "
        "compiled by Seamless with zero changes to the solver, and its "
        "cost drops by an order of magnitude; both variants converge to "
        "identical solutions.  This is the end-to-end use case the "
        "paper's Discussion section narrates.")
    return section.render()


def test_pipeline_compiled(benchmark):
    def run():
        def body(comm):
            return core.newton_krylov_pipeline(comm, 20_000,
                                               compile_callback=True)
        return mpi.run_spmd(body, NRANKS)[0]
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.converged


if __name__ == "__main__":
    main(generate_report)
