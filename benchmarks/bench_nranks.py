"""C8 -- rank-count sweep of the distributed SpMV kernel.

For 1..32 ranks on a fixed 2-D Poisson problem, measures the exact halo
traffic of one SpMV and projects time with the alpha-beta model: the
surface-to-volume shape (halo ~ O(sqrt(N) * P) for 1-D row striping)
determines where communication starts to eat the speedup.
"""

import numpy as np

from repro import galeri, mpi, tpetra
from repro.mpi import COMMODITY_CLUSTER, ETHERNET

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

NX = NY = 64
RANKS = [1, 2, 4, 8, 16, 32]


def _spmv_traffic(p):
    def body(comm):
        A = galeri.laplace_2d(NX, NY, comm)
        x = tpetra.Vector(A.row_map).putScalar(1.0)
        before = comm.traffic_snapshot()
        y = A @ x
        delta = comm.traffic_snapshot() - before
        return delta.sends, delta.bytes_sent, float(y.norm2())
    results = mpi.run_spmd(body, p)
    msgs = sum(r[0] for r in results)
    nbytes = sum(r[1] for r in results)
    return msgs, nbytes, results[0][2]


def _measure():
    n = NX * NY
    flops = 2 * 5 * n  # 5-point stencil
    rows = []
    norm_ref = None
    t1 = {}
    for p in RANKS:
        msgs, nbytes, norm = _spmv_traffic(p)
        if norm_ref is None:
            norm_ref = norm
        assert abs(norm - norm_ref) < 1e-9
        row = [p, msgs, f"{nbytes:,}"]
        for model in (COMMODITY_CLUSTER, ETHERNET):
            total = model.compute_time(flops / p) + \
                model.comm_time(msgs, nbytes)
            t1.setdefault(model.name, model.compute_time(flops))
            row.append(f"{t1[model.name] / total:.2f}")
        rows.append(tuple(row))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("C8: SpMV rank sweep (measured traffic, projected "
                      "speedup)")
    section.add(table(
        ["ranks", "halo msgs", "halo bytes", "speedup (cluster)",
         "speedup (ethernet)"], rows,
        title=f"{NX}x{NY} 5-point Poisson SpMV; result norm identical at "
              f"every rank count"))
    section.line(
        "Halo traffic grows linearly with the rank count (row-striped "
        "1-D decomposition: 2 neighbor exchanges per interior rank) while "
        "per-rank compute shrinks, so projected speedup rolls over "
        "sooner on the slow interconnect -- the textbook strong-scaling "
        "shape, driven here by measured message counts.")
    return section.render()


def test_spmv_4_ranks(benchmark):
    def run():
        return _spmv_traffic(4)
    msgs, nbytes, _norm = benchmark.pedantic(run, rounds=1, iterations=1)
    assert msgs > 0 and nbytes > 0


def test_spmv_correct_across_ranks(benchmark):
    def run():
        return [_spmv_traffic(p)[2] for p in (1, 3, 8)]
    norms = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(norms) - min(norms) < 1e-9


if __name__ == "__main__":
    main(generate_report)
