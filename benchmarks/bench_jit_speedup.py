"""L3/C5 -- "Python is too slow. Seamless allows compilation to fast
machine code."

Three kernels (the paper's sum, a saxpy reduction, and an iterative
logistic-map kernel a vectorizer cannot help with), each timed as pure
Python, Seamless JIT, and NumPy where expressible.
"""

import time

import numpy as np

from repro.seamless import compiler_available, jit

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 1_000_000


# --- kernels, defined once; jit wraps the same code object -------------
def sum_kernel(it):
    res = 0.0
    for i in range(len(it)):
        res += it[i]
    return res


def saxpy_dot(x, y, a):
    s = 0.0
    for i in range(len(x)):
        s += (a * x[i] + y[i]) * x[i]
    return s


def logistic_final(x0, r, steps):
    x = x0
    for _i in range(steps):
        x = r * x * (1.0 - x)
    return x


def _time(fn, *args, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, value


def _measure():
    rng = np.random.default_rng(0)
    data = rng.random(N)
    x = rng.random(N)
    y = rng.random(N)

    jsum = jit(sum_kernel)
    jsaxpy = jit(saxpy_dot)
    jlog = jit(logistic_final)
    # warm up compilations
    jsum(data[:10]); jsaxpy(x[:10], y[:10], 1.1); jlog(0.2, 3.7, 10)

    rows = []

    t_py, v_py = _time(sum_kernel, data, repeats=1)
    t_jit, v_jit = _time(jsum, data)
    t_np, _ = _time(np.sum, data)
    assert abs(v_py - v_jit) < 1e-6 * max(1.0, abs(v_py))
    rows.append(("sum (paper IV-A)", f"{t_py * 1e3:.1f}",
                 f"{t_jit * 1e3:.2f}", f"{t_np * 1e3:.2f}",
                 f"{t_py / t_jit:.0f}x", f"{t_py / t_np:.0f}x"))

    t_py, v_py = _time(saxpy_dot, x, y, 1.5, repeats=1)
    t_jit, v_jit = _time(jsaxpy, x, y, 1.5)
    t_np, _ = _time(lambda: float(((1.5 * x + y) * x).sum()))
    assert abs(v_py - v_jit) < 1e-6 * max(1.0, abs(v_py))
    rows.append(("saxpy-dot", f"{t_py * 1e3:.1f}", f"{t_jit * 1e3:.2f}",
                 f"{t_np * 1e3:.2f}", f"{t_py / t_jit:.0f}x",
                 f"{t_py / t_np:.0f}x"))

    steps = 2_000_000
    t_py, v_py = _time(logistic_final, 0.2, 3.7, steps, repeats=1)
    t_jit, v_jit = _time(jlog, 0.2, 3.7, steps)
    assert abs(v_py - v_jit) < 1e-9
    rows.append(("logistic map (sequential)", f"{t_py * 1e3:.1f}",
                 f"{t_jit * 1e3:.2f}", "n/a", f"{t_py / t_jit:.0f}x",
                 "n/a"))
    return rows


def generate_report() -> str:
    if not compiler_available():
        return Section("L3/C5: Seamless JIT speedup").line(
            "SKIPPED: no C compiler available.").render()
    rows = _measure()
    section = Section("L3/C5: Seamless JIT speedup over pure Python")
    section.add(table(
        ["kernel", "python ms", "jit ms", "numpy ms", "jit speedup",
         "numpy speedup"], rows,
        title=f"N = {N:,} float64 elements (best of 3)"))
    section.line(
        "The JIT reaches (and for sequential kernels exceeds) NumPy's "
        "C-library speed from plain decorated Python -- the paper's "
        "'node-level Python code as fast as compiled languages' claim. "
        "The logistic-map row shows the case vectorization cannot touch, "
        "where only compilation helps.")
    return section.render()


def test_jit_sum(benchmark):
    if not compiler_available():
        import pytest
        pytest.skip("no C compiler")
    data = np.random.default_rng(0).random(N)
    jsum = jit(sum_kernel)
    jsum(data[:8])  # compile
    result = benchmark(jsum, data)
    assert abs(result - data.sum()) < 1e-6


def test_pure_python_sum_baseline(benchmark):
    data = np.random.default_rng(0).random(20_000)  # smaller: it's slow
    result = benchmark(sum_kernel, data)
    assert abs(result - data.sum()) < 1e-8


if __name__ == "__main__":
    main(generate_report)
