"""Flight-recorder overhead: always-on must mean almost-free.

The flight recorder (:data:`repro.obs.FLIGHT`) records at every driver
control op, worker op and MPI collective even with tracing disabled, so
its cost rides on every ODIN workload.  The acceptance bound is <=5%
end-to-end on the C1 ufunc-scaling workload with tracing off.

Two measurements:

1. the C1 workload (two odin.random arrays, one fused expression,
   evaluate) with the recorder disabled vs. enabled at the default
   4096-slot capacity -- best-of-N wall clock on each side;
2. a microbenchmark of one ``FLIGHT.complete()`` append (the hot-path
   unit: a perf_counter read, a tuple build and an index store).
"""

import time
import timeit

import numpy as np

from repro import odin
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.odin.context import OdinContext

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 200_000
WORKERS = 4
REPEATS = 5


def _workload():
    with OdinContext(WORKERS) as ctx:
        u = odin.random(N, ctx=ctx, seed=1)
        v = odin.random(N, ctx=ctx, seed=2)
        with odin.lazy():
            expr = odin.sqrt(u * u + v * v) * 2.0 - 1.0
        out = odin.evaluate(expr, use_seamless=False)
        return float(np.asarray(out.gather()).sum())


def _timed_run():
    t0 = time.perf_counter()
    _workload()
    return time.perf_counter() - t0


def _best_of(runs=REPEATS):
    # min-of-N: the least-interfered-with sample estimates the true cost
    return min(_timed_run() for _ in range(runs))


def _measure():
    was_enabled = FLIGHT.enabled
    try:
        FLIGHT.enabled = False
        off = _best_of()
        FLIGHT.enabled = True
        on = _best_of()
    finally:
        FLIGHT.enabled = was_enabled

    # hot-path unit cost, isolated from the workload
    rec = FlightRecorder(capacity=4096)
    t0 = rec.now()
    append = timeit.timeit(
        lambda: rec.complete("bench", "op", 0, t0), number=100_000)
    guard = timeit.timeit("r.enabled", globals={"r": rec}, number=1_000_000)
    return off, on, append, guard


def generate_report() -> str:
    off, on, append, guard = _measure()
    overhead = 100.0 * (on - off) / off
    section = Section("C10: flight-recorder overhead "
                      f"({WORKERS} workers, N = {N:,}, tracing disabled)")
    section.add(table(
        ["configuration", "best-of-%d (s)" % REPEATS, "vs disabled"],
        [
            ("flight recorder off", f"{off:.4f}", "--"),
            ("flight recorder on (capacity 4096)", f"{on:.4f}",
             f"{overhead:+.1f}%"),
        ]))
    section.line()
    section.add(table(
        ["microbenchmark", "seconds", "ns/op"],
        [
            ("FLIGHT.complete() append (1e5)", f"{append:.4f}",
             f"{append * 1e4:.0f}"),
            ("FLIGHT.enabled guard (1e6)", f"{guard:.4f}",
             f"{guard * 1e3:.1f}"),
        ]))
    section.line()
    section.line(
        "An append is a clock read, a tuple build and an index store "
        "into a preallocated per-thread ring -- no locks, no "
        "allocation growth.  The acceptance bound is <=5% end-to-end "
        "with tracing disabled; the recorder earns its keep the first "
        "time a crash dump replaces a blind AbortError.")
    return section.render()


def test_flight_overhead_within_bound(benchmark):
    """Recorder-on stays within a generous CI bound of recorder-off
    (the report shows the measured figure; the acceptance bound of 5%
    is checked on quiet machines, CI uses slack for shared runners)."""
    def run():
        was = FLIGHT.enabled
        try:
            FLIGHT.enabled = False
            off = _best_of(3)
            FLIGHT.enabled = True
            on = _best_of(3)
        finally:
            FLIGHT.enabled = was
        return off, on
    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    assert on < off * 1.5


if __name__ == "__main__":
    main(generate_report)
