"""F1 -- Fig. 1 of the paper: the ODIN process/worker architecture.

Measures, for representative operations, the bytes the ODIN process sends
(control plane) versus the bytes workers exchange among themselves (data
plane), demonstrating the paper's claims that control messages are tiny
("at most tens of bytes" of payload) and that workers bypass the driver
for data movement.
"""

import numpy as np

from repro import odin
from repro.odin.context import OdinContext

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 200_000
N_SOLVE = 512
WORKERS = 4


def _measure():
    rows = []
    with OdinContext(WORKERS) as ctx:
        def snap(label):
            cm, cb = ctx.control_traffic()
            wm, wb = ctx.worker_traffic()
            rows.append((label, cm, cb, wm, wb,
                         f"{wb / max(cb, 1):.1f}x"))
            ctx.reset_counters()

        ctx.reset_counters()
        x = odin.random(N, ctx=ctx, seed=1)
        snap(f"create random({N:,})")

        y = odin.sin(x)
        snap("unary ufunc sin(x)")

        z = x + y
        snap("binary ufunc x + y (conformable)")

        _w = x.redistribute(odin.CyclicDistribution((N,), 0, WORKERS))
        snap("redistribute block -> cyclic")

        _d = y[1:] - y[:-1]
        snap("shifted-slice difference")

        _s = x.sum()
        snap("global sum reduction")

        # ODIN -> PyTrilinos bridge: CG on a Galeri Laplacian, iterating
        # on the workers.  Exercises every layer at once (control ops,
        # worker-side solver iterations, MPI collectives), which is also
        # what makes this benchmark the reference trace producer.
        b = odin.ones(N_SOLVE, ctx=ctx)
        _xs, _info = odin.trilinos.solve("Laplace1D", b,
                                         matrix_params={"n": N_SOLVE},
                                         solver="CG", tol=1e-8,
                                         maxiter=2 * N_SOLVE)
        snap(f"CG solve Laplace1D({N_SOLVE:,})")
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("F1: Fig. 1 -- control plane vs data plane")
    section.add(table(
        ["operation", "ctl msgs", "ctl bytes", "wrk msgs", "wrk bytes",
         "data/ctl"], rows,
        title=f"{WORKERS} workers, N = {N:,} float64 "
              f"({8 * N:,} bytes of payload)"))
    section.line(
        "Creation/ufuncs/reductions move no array data at all; the only "
        "data-plane traffic comes from redistribution and halo exchange, "
        "and it flows worker-to-worker (the ODIN process never relays "
        "payload). Control messages are a few hundred bytes regardless of "
        "the multi-megabyte arrays they describe -- Fig. 1's design, "
        "measured.")
    return section.render()


def test_control_plane_stays_small(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    create_row = rows[0]
    assert create_row[2] < 5_000          # control bytes for creation
    redist_row = rows[3]
    assert redist_row[4] > 100 * redist_row[2]   # data >> control


if __name__ == "__main__":
    main(generate_report)
