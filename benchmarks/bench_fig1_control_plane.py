"""F1 -- Fig. 1 of the paper: the ODIN process/worker architecture.

Measures, for representative operations, the bytes the ODIN process sends
(control plane) versus the bytes workers exchange among themselves (data
plane), demonstrating the paper's claims that control messages are tiny
("at most tens of bytes" of payload) and that workers bypass the driver
for data movement.
"""

import numpy as np

from repro import odin
from repro.metrics import REGISTRY as _MX
from repro.odin.context import OdinContext

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 200_000
N_SOLVE = 512
WORKERS = 4
BATCH_OPS = 10   # ops in the create/store sequence for the round-trip bench


def _measure():
    rows = []
    with OdinContext(WORKERS) as ctx:
        def snap(label):
            ctx.flush()  # batched ops: synchronize before reading counters
            cm, cb = ctx.control_traffic()
            wm, wb = ctx.worker_traffic()
            rows.append((label, cm, cb, wm, wb,
                         f"{wb / max(cb, 1):.1f}x"))
            ctx.reset_counters()

        ctx.reset_counters()
        x = odin.random(N, ctx=ctx, seed=1)
        snap(f"create random({N:,})")

        y = odin.sin(x)
        snap("unary ufunc sin(x)")

        z = x + y
        snap("binary ufunc x + y (conformable)")

        _w = x.redistribute(odin.CyclicDistribution((N,), 0, WORKERS))
        snap("redistribute block -> cyclic")

        _d = y[1:] - y[:-1]
        snap("shifted-slice difference")

        _s = x.sum()
        snap("global sum reduction")

        # ODIN -> PyTrilinos bridge: CG on a Galeri Laplacian, iterating
        # on the workers.  Exercises every layer at once (control ops,
        # worker-side solver iterations, MPI collectives), which is also
        # what makes this benchmark the reference trace producer.
        b = odin.ones(N_SOLVE, ctx=ctx)
        _xs, _info = odin.trilinos.solve("Laplace1D", b,
                                         matrix_params={"n": N_SOLVE},
                                         solver="CG", tol=1e-8,
                                         maxiter=2 * N_SOLVE)
        snap(f"CG solve Laplace1D({N_SOLVE:,})")
    return rows


def _gather_calls() -> float:
    """Total gather collective invocations recorded by the metrics
    registry (each logical gather counts once per participating rank --
    the factor cancels in the batched/per-op ratio)."""
    return sum(m.value for m in _MX.metrics()
               if m.name == "mpi.coll.calls"
               and dict(m.labels).get("op") == "gather")


def _measure_round_trips():
    """Driver round trips for a 10-op create/store sequence.

    A round trip is a result gather the driver blocks on; with batching
    the whole sequence defers to one synchronizing flush.  Counted from
    ``mpi.coll.calls`` metrics, not wall clock.
    """
    was_enabled = _MX.enabled
    counts = {}
    try:
        for label, batch in (("per-op", False), ("batched", True)):
            _MX.clear()
            _MX.enable()
            with OdinContext(WORKERS, batch=batch) as ctx:
                _MX.clear()   # drop startup-split collectives
                arrays = [odin.zeros(1024, ctx=ctx)
                          for _ in range(BATCH_OPS // 2)]
                stored = [odin.sin(a) for a in arrays]
                ctx.flush()
                counts[label] = _gather_calls()
                del stored
    finally:
        _MX.clear()
        if not was_enabled:
            _MX.disable()
    return counts


def generate_report() -> str:
    rows = _measure()
    trips = _measure_round_trips()
    section = Section("F1: Fig. 1 -- control plane vs data plane")
    section.add(table(
        ["operation", "ctl msgs", "ctl bytes", "wrk msgs", "wrk bytes",
         "data/ctl"], rows,
        title=f"{WORKERS} workers, N = {N:,} float64 "
              f"({8 * N:,} bytes of payload)"))
    section.line(
        "Creation/ufuncs/reductions move no array data at all; the only "
        "data-plane traffic comes from redistribution and halo exchange, "
        "and it flows worker-to-worker (the ODIN process never relays "
        "payload). Control messages are a few hundred bytes regardless of "
        "the multi-megabyte arrays they describe -- Fig. 1's design, "
        "measured.")
    ratio = trips["per-op"] / max(trips["batched"], 1)
    section.line(
        f"Control-plane batching: a {BATCH_OPS}-op create/store sequence "
        f"costs {trips['batched']:.0f} result-gather collectives batched "
        f"vs {trips['per-op']:.0f} op-per-round-trip "
        f"({ratio:.1f}x fewer driver round trips).")
    return section.render()


def test_control_plane_stays_small(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    create_row = rows[0]
    assert create_row[2] < 5_000          # control bytes for creation
    redist_row = rows[3]
    assert redist_row[4] > 100 * redist_row[2]   # data >> control


def test_batching_halves_driver_round_trips():
    trips = _measure_round_trips()
    # acceptance: >= 2x fewer round trips for the 10-op sequence,
    # asserted on collective-call metrics rather than wall clock
    assert trips["per-op"] >= 2 * trips["batched"]


if __name__ == "__main__":
    main(generate_report)
