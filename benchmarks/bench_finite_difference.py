"""L2/C1 -- the paper's distributed finite-difference example at scale.

Runs the section III-G expression ``dy/dx = (y[1:] - y[:-1]) / dx`` for
several problem sizes, reporting wall time vs serial NumPy, the measured
halo traffic, and alpha-beta projected communication time on a commodity
cluster (where the traffic, not the thread runtime, is the honest unit).
"""

import time

import numpy as np

from repro import odin
from repro.mpi import COMMODITY_CLUSTER
from repro.odin.context import OdinContext

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

WORKERS = 4
SIZES = [10_000, 100_000, 1_000_000]


def _run_once(n, ctx):
    x = odin.linspace(1, 2 * np.pi, n, ctx=ctx)
    y = odin.sin(x)
    ctx.reset_counters()
    t0 = time.perf_counter()
    dy = y[1:] - y[:-1]
    dydx = dy / (x[1] - x[0])
    dt = time.perf_counter() - t0
    cm, cb = ctx.control_traffic()
    wm, wb = ctx.worker_traffic()
    return dydx, dt, (cm + wm, cb + wb)


def _serial(n):
    xs = np.linspace(1, 2 * np.pi, n)
    ys = np.sin(xs)
    t0 = time.perf_counter()
    _ = (ys[1:] - ys[:-1]) / (xs[1] - xs[0])
    return time.perf_counter() - t0


def _measure():
    rows = []
    with OdinContext(WORKERS) as ctx:
        for n in SIZES:
            dydx, dt, (msgs, nbytes) = _run_once(n, ctx)
            ser = _serial(n)
            ref = np.diff(np.sin(np.linspace(1, 2 * np.pi, n)))
            ref /= (2 * np.pi - 1) / (n - 1)
            err = float(np.abs(dydx.gather() - ref).max())
            proj = COMMODITY_CLUSTER.comm_time(msgs, nbytes)
            rows.append((f"{n:,}", f"{ser * 1e3:.2f}", f"{dt * 1e3:.2f}",
                         msgs, f"{nbytes:,}", f"{proj * 1e6:.1f}",
                         f"{err:.1e}"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("L2/C1: distributed finite differences "
                      "(paper section III-G)")
    section.add(table(
        ["N", "numpy ms", "odin ms", "messages", "bytes moved",
         "proj comm us", "max err"],
        rows, title=f"{WORKERS} workers; projection: "
                    f"{COMMODITY_CLUSTER.name} (alpha-beta model)"))
    section.line(
        "The halo exchange volume stays O(workers), independent of N: the "
        "projected cluster communication time is microseconds even for "
        "10^6 points, while the equivalent hand-written MPI code would "
        "need the same sends the runtime performed automatically.")
    return section.render()


def test_fd_expression(benchmark):
    with OdinContext(WORKERS) as ctx:
        x = odin.linspace(1, 2 * np.pi, 200_000, ctx=ctx)
        y = odin.sin(x)
        dx = x[1] - x[0]

        def step():
            return (y[1:] - y[:-1]) / dx

        result = benchmark(step)
        assert result.shape == (199_999,)


if __name__ == "__main__":
    main(generate_report)
