"""C3 -- expression optimization: loop fusion.

Compares three executions of sqrt(u*u + v*v) * 2 - 1:

- eager: one control round-trip and one temporary per operation,
- fused (NumPy stack machine): one round-trip for the whole expression,
- fused (Seamless): additionally a single native loop, no temporaries.
"""

import time

import numpy as np

from repro import odin
from repro.odin.context import OdinContext
from repro.seamless import compiler_available

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 2_000_000
W = 4


def _measure():
    rows = []
    with OdinContext(W) as ctx:
        u = odin.random(N, ctx=ctx, seed=1)
        v = odin.random(N, ctx=ctx, seed=2)

        def eager():
            return odin.sqrt(u * u + v * v) * 2.0 - 1.0

        def fused(use_seamless):
            with odin.lazy():
                expr = odin.sqrt(u * u + v * v) * 2.0 - 1.0
            return odin.evaluate(expr, use_seamless=use_seamless)

        def run(label, fn):
            fn()  # warm (compilation, allocation)
            ctx.reset_counters()
            t0 = time.perf_counter()
            out = fn()
            dt = time.perf_counter() - t0
            msgs, _b = ctx.control_traffic()
            rows.append((label, f"{dt * 1e3:.1f}", msgs, out))

        run("eager (per-op round trips)", eager)
        run("fused, numpy stack machine", lambda: fused(False))
        if compiler_available():
            run("fused, Seamless native loop", lambda: fused(True))
        # verify all variants agree (inside the context's lifetime)
        ref = rows[0][3].gather()
        for label, _dt, _m, out in rows[1:]:
            assert np.allclose(out.gather(), ref), label
    return [(r[0], r[1], r[2]) for r in rows]


def generate_report() -> str:
    rows = _measure()
    section = Section("C3: loop fusion of distributed expressions")
    section.add(table(
        ["execution", "time ms", "driver msgs"], rows,
        title=f"sqrt(u*u + v*v) * 2 - 1, N = {N:,}, {W} workers "
              f"(5 elementwise ops)"))
    section.line(
        "Fusion collapses five per-op control round-trips into one, and "
        "the Seamless backend evaluates the whole expression in a single "
        "compiled pass with no intermediate arrays -- the optimization the "
        "paper lists first for ODIN (all variants verified identical).")
    return section.render()


def test_fused_numpy(benchmark):
    with OdinContext(W) as ctx:
        u = odin.random(N // 4, ctx=ctx, seed=1)
        v = odin.random(N // 4, ctx=ctx, seed=2)

        def run():
            with odin.lazy():
                expr = odin.sqrt(u * u + v * v) * 2.0 - 1.0
            return odin.evaluate(expr, use_seamless=False)

        out = benchmark(run)
        assert out.shape == (N // 4,)


def test_fused_native(benchmark):
    if not compiler_available():
        import pytest
        pytest.skip("no C compiler")
    with OdinContext(W) as ctx:
        u = odin.random(N // 4, ctx=ctx, seed=1)
        v = odin.random(N // 4, ctx=ctx, seed=2)

        def run():
            with odin.lazy():
                expr = odin.sqrt(u * u + v * v) * 2.0 - 1.0
            return odin.evaluate(expr, use_seamless=True)

        run()  # compile once
        out = benchmark(run)
        assert out.shape == (N // 4,)


if __name__ == "__main__":
    main(generate_report)
