"""C6 -- distributed tabular data as a Map-Reduce substrate.

A map -> filter -> shuffled group-by pipeline over structured records,
verified against the serial computation, with the shuffle volume
reported (hash partitioning moves each surviving row at most once).
"""

import time

import numpy as np

from repro import odin
from repro.odin import tabular
from repro.odin.context import OdinContext

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

N = 300_000
NCAT = 16
W = 4


def _records():
    rng = np.random.default_rng(0)
    rec = np.zeros(N, dtype=[("category", "i8"), ("value", "f8")])
    rec["category"] = rng.integers(0, NCAT, N)
    rec["value"] = rng.normal(loc=rec["category"].astype(float), scale=1.0)
    return rec


def _measure():
    rec = _records()
    rows = []
    with OdinContext(W) as ctx:
        t0 = time.perf_counter()
        t = tabular.from_records(rec, ctx=ctx)
        rows.append(("distribute records", f"{(time.perf_counter() - t0) * 1e3:.1f}", "-"))

        def clip(block):
            out = block.copy()
            out["value"] = np.abs(out["value"])
            return out

        ctx.reset_counters()
        t0 = time.perf_counter()
        t = tabular.map_records(clip, t)
        _m, b = ctx.worker_traffic()
        rows.append(("map (abs)", f"{(time.perf_counter() - t0) * 1e3:.1f}",
                     f"{b:,}"))

        ctx.reset_counters()
        t0 = time.perf_counter()
        t = tabular.filter_records(lambda blk: blk["value"] > 0.5, t)
        _m, b = ctx.worker_traffic()
        rows.append(("filter (> 0.5)",
                     f"{(time.perf_counter() - t0) * 1e3:.1f}", f"{b:,}"))
        survivors = t.shape[0]

        ctx.reset_counters()
        t0 = time.perf_counter()
        agg = tabular.group_aggregate(t, "category", "value", op="mean")
        _m, shuffle_bytes = ctx.worker_traffic()
        rows.append(("group-by mean (shuffle)",
                     f"{(time.perf_counter() - t0) * 1e3:.1f}",
                     f"{shuffle_bytes:,}"))

        got = {int(r["key"]): float(r["value"]) for r in agg.gather()}
    # serial reference
    ref_rec = rec.copy()
    ref_rec["value"] = np.abs(ref_rec["value"])
    ref_rec = ref_rec[ref_rec["value"] > 0.5]
    for k in np.unique(ref_rec["category"]):
        ref = ref_rec["value"][ref_rec["category"] == k].mean()
        assert abs(got[int(k)] - ref) < 1e-10
    return rows, survivors, shuffle_bytes


def generate_report() -> str:
    rows, survivors, shuffle_bytes = _measure()
    section = Section("C6: Map-Reduce over distributed tabular data")
    section.add(table(["phase", "time ms", "bytes moved"], rows,
                      title=f"{N:,} records, {NCAT} keys, {W} workers"))
    per_row = 16  # i8 + f8
    section.line(
        f"Map and filter move no row data (only the relayed control "
        f"broadcast, <1 KB); the "
        f"shuffle moved {shuffle_bytes:,} bytes for {survivors:,} "
        f"surviving {per_row}-byte rows (~{shuffle_bytes / max(survivors * per_row, 1):.2f}x "
        f"the payload, i.e. each row crosses the wire about once). "
        f"Per-category means match the serial computation exactly.")
    return section.render()


def test_group_aggregate(benchmark):
    rec = _records()[:50_000]
    with OdinContext(W) as ctx:
        t = tabular.from_records(rec, ctx=ctx)

        def run():
            return tabular.group_aggregate(t, "category", "value", "sum")

        out = benchmark(run)
        assert out.shape[0] == NCAT


if __name__ == "__main__":
    main(generate_report)
