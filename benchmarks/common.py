"""Shared helpers for the benchmark suite.

Every bench module exposes ``generate_report() -> str`` producing the
table/series the corresponding paper artifact requires (see DESIGN.md's
experiment index); ``benchmarks/run_all.py`` collects them into
EXPERIMENTS.md.  The ``test_*`` functions additionally register wall-clock
timings with pytest-benchmark.
"""

from __future__ import annotations

import io
from typing import Callable, Iterable, List, Sequence

__all__ = ["table", "Section", "main"]


def table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "",
          widths: Sequence[int] = None) -> str:
    """Render a fixed-width text table."""
    rows = [tuple(str(c) for c in row) for row in rows]
    if widths is None:
        widths = [max(len(h), *(len(r[i]) for r in rows)) + 2
                  if rows else len(h) + 2
                  for i, h in enumerate(headers)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = "".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(header_line.rstrip() + "\n")
    out.write("-" * len(header_line.rstrip()) + "\n")
    for row in rows:
        out.write("".join(c.ljust(w)
                          for c, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue()


def main(generate_report: Callable[[], str]) -> None:
    """CLI entry point shared by every bench module's ``__main__`` block.

    ``--trace OUT.json`` switches on :mod:`repro.trace` for the run and
    writes a Chrome ``trace_event`` file (load it in ``chrome://tracing``
    or https://ui.perfetto.dev).  Setting ``REPRO_TRACE=1`` in the
    environment enables tracing too; ``--trace`` is how the events get
    onto disk either way.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Run this benchmark and print its report.")
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="enable repro.trace and write a Chrome trace_event JSON "
             "file of the run")
    args = parser.parse_args()
    if args.trace:
        from repro import trace
        trace.enable()
    print(generate_report())
    if args.trace:
        from repro.trace import write_chrome_trace
        nevents = write_chrome_trace(args.trace)
        print(f"[trace] wrote {nevents} events to {args.trace}")


class Section:
    """Accumulates a titled report."""

    def __init__(self, title: str):
        self.parts: List[str] = [f"## {title}", ""]

    def add(self, text: str) -> "Section":
        self.parts.append(text)
        return self

    def line(self, text: str = "") -> "Section":
        self.parts.append(text)
        return self

    def render(self) -> str:
        return "\n".join(self.parts) + "\n"
