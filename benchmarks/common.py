"""Shared helpers for the benchmark suite.

Every bench module exposes ``generate_report() -> str`` producing the
table/series the corresponding paper artifact requires (see DESIGN.md's
experiment index); ``benchmarks/run_all.py`` collects them into
EXPERIMENTS.md.  The ``test_*`` functions additionally register wall-clock
timings with pytest-benchmark.
"""

from __future__ import annotations

import io
from typing import Callable, Iterable, List, Sequence

__all__ = ["table", "Section", "main"]


def table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "",
          widths: Sequence[int] = None) -> str:
    """Render a fixed-width text table."""
    rows = [tuple(str(c) for c in row) for row in rows]
    if widths is None:
        widths = [max(len(h), *(len(r[i]) for r in rows)) + 2
                  if rows else len(h) + 2
                  for i, h in enumerate(headers)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = "".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(header_line.rstrip() + "\n")
    out.write("-" * len(header_line.rstrip()) + "\n")
    for row in rows:
        out.write("".join(c.ljust(w)
                          for c, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue()


def main(generate_report: Callable[[], str]) -> None:
    """CLI entry point shared by every bench module's ``__main__`` block.

    Observability flags:

    ``--trace OUT.json``
        switch on :mod:`repro.trace` for the run and write a Chrome
        ``trace_event`` file (load it in ``chrome://tracing`` or
        https://ui.perfetto.dev).
    ``--metrics OUT.json``
        switch on :mod:`repro.metrics` and write the registry (plus the
        ``TimeMonitor`` table) as JSON.
    ``--analyze``
        switch on tracing and print the post-mortem analysis (load
        imbalance, wait states, critical path, communication matrix)
        after the report.
    ``--profile OUT.folded``
        sample every rank thread's stack during the run
        (:mod:`repro.obs.profiler`) and write flame-graph-ready folded
        stacks (feed to ``flamegraph.pl`` or speedscope).

    ``REPRO_TRACE=1`` / ``REPRO_METRICS=1`` in the environment enable
    collection too; the flags are how the data gets onto disk either way.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Run this benchmark and print its report.")
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="enable repro.trace and write a Chrome trace_event JSON "
             "file of the run")
    parser.add_argument(
        "--metrics", metavar="OUT.json", default=None,
        help="enable repro.metrics and write the metric registry (and "
             "TimeMonitor table) as JSON")
    parser.add_argument(
        "--analyze", action="store_true",
        help="enable repro.trace and print the post-mortem analysis "
             "(imbalance, wait states, critical path, comm matrix)")
    parser.add_argument(
        "--profile", metavar="OUT.folded", default=None,
        help="sample rank-thread stacks during the run and write "
             "flame-graph-ready folded stacks")
    args = parser.parse_args()
    if args.trace or args.analyze:
        from repro import trace
        trace.enable()
    if args.metrics:
        from repro import metrics
        metrics.enable()
    prof = None
    if args.profile:
        from repro.obs.profiler import SamplingProfiler
        prof = SamplingProfiler()
        prof.start()
    print(generate_report())
    if prof is not None:
        prof.stop()
        folded = prof.folded()
        with open(args.profile, "w") as fh:
            fh.write(folded)
        nsamples = sum(int(line.rsplit(" ", 1)[1])
                       for line in folded.splitlines() if line)
        print(f"[profile] wrote {nsamples} samples to {args.profile}")
    if args.trace:
        from repro.trace import write_chrome_trace
        nevents = write_chrome_trace(args.trace)
        print(f"[trace] wrote {nevents} events to {args.trace}")
    if args.metrics:
        from repro import metrics
        with open(args.metrics, "w") as fh:
            fh.write(metrics.to_json(indent=2))
        print(f"[metrics] wrote {len(metrics.get_registry())} metric(s) "
              f"to {args.metrics}")
    if args.analyze:
        from repro.trace import analyze
        print(analyze.report())


class Section:
    """Accumulates a titled report."""

    def __init__(self, title: str):
        self.parts: List[str] = [f"## {title}", ""]

    def add(self, text: str) -> "Section":
        self.parts.append(text)
        return self

    def line(self, text: str = "") -> "Section":
        self.parts.append(text)
        return self

    def render(self) -> str:
        return "\n".join(self.parts) + "\n"
