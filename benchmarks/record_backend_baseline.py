"""Record thread-vs-process transport wall numbers: BENCH_process.json.

Companion to BENCH_baseline.json (which tracks absolute bench medians
for the warn-only perf gate): this file records the *backend comparison*
for the two scaling benches the multiprocess-transport PR gates on,
together with the core count that makes the numbers interpretable -- a
single-core runner can only show fork/IPC overhead, a multicore runner
must show genuine speedup.

Usage::

    PYTHONPATH=src python benchmarks/record_backend_baseline.py \
        [--out BENCH_process.json] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

try:
    from . import bench_solvers_gmres, bench_ufunc_scaling
except ImportError:  # executed as a script, not as a package module
    import bench_solvers_gmres
    import bench_ufunc_scaling


def collect(repeats: int) -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "note": ("median wall seconds for identical SPMD programs on the "
                 "thread vs process transport at nranks=4; speedup = "
                 "thread_s / process_s.  On hosts with fewer than 4 "
                 "cores the process backend cannot win -- the recorded "
                 "number is honest overhead, not a regression."),
        "benchmarks": {
            "bench_ufunc_scaling":
                bench_ufunc_scaling.measure_backend_wall(repeats=repeats),
            "bench_solvers_gmres":
                bench_solvers_gmres.measure_backend_wall(repeats=repeats),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="record thread-vs-process backend wall times")
    parser.add_argument("--out", default="BENCH_process.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    doc = collect(args.repeats)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, m in doc["benchmarks"].items():
        print(f"{name}: thread {m['thread_s']:.3f}s  process "
              f"{m['process_s']:.3f}s  speedup {m['speedup']:.2f}x "
              f"(nranks={m['nranks']}, {doc['cpu_count']} cores)")
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
