"""Ablation A2 -- collective algorithm choices in the MPI substrate.

DESIGN.md: collectives are built on point-to-point with the classic
algorithms (binomial broadcast, ring allgather, pairwise alltoall,
dissemination barrier).  This bench compares them against naive linear
variants implemented here over the same p2p layer: message counts and the
critical-path depth (rounds) are measured, and latency-bound times
projected -- the reason the tree algorithms are the defaults.
"""

import math

import numpy as np

from repro import mpi
from repro.mpi import COMMODITY_CLUSTER

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

P = 16


def _linear_bcast(comm, obj, root=0):
    if comm.rank == root:
        for r in range(comm.size):
            if r != root:
                comm.send(obj, r, tag=900)
        return obj
    return comm.recv(source=root, tag=900)


def _linear_barrier(comm):
    token = comm.gather(None, root=0)
    comm.bcast(token is not None, root=0)


def _traffic(p, fn):
    def body(comm):
        before = comm.traffic_snapshot()
        fn(comm)
        delta = comm.traffic_snapshot() - before
        return delta.sends
    sends = mpi.run_spmd(body, p)
    return sum(sends), max(sends)


def _measure():
    payload = list(range(256))  # ~2 KB pickled
    rows = []

    total, per_rank = _traffic(P, lambda c: c.bcast(
        payload if c.rank == 0 else None, root=0))
    depth = math.ceil(math.log2(P))
    rows.append(("bcast: binomial tree", total, per_rank, depth,
                 f"{COMMODITY_CLUSTER.alpha * depth * 1e6:.1f}"))

    total, per_rank = _traffic(P, lambda c: _linear_bcast(
        c, payload if c.rank == 0 else payload))
    rows.append(("bcast: linear (naive)", total, per_rank, P - 1,
                 f"{COMMODITY_CLUSTER.alpha * (P - 1) * 1e6:.1f}"))

    total, per_rank = _traffic(P, lambda c: c.barrier())
    rows.append(("barrier: dissemination", total, per_rank,
                 math.ceil(math.log2(P)),
                 f"{COMMODITY_CLUSTER.alpha * math.ceil(math.log2(P)) * 1e6:.1f}"))

    total, per_rank = _traffic(P, _linear_barrier)
    rows.append(("barrier: gather+bcast (naive)", total, per_rank,
                 2 * math.ceil(math.log2(P)) + P - 1, "-"))

    total, per_rank = _traffic(P, lambda c: c.allgather(c.rank))
    rows.append(("allgather: ring", total, per_rank, P - 1,
                 f"{COMMODITY_CLUSTER.alpha * (P - 1) * 1e6:.1f}"))

    def gather_bcast_allgather(c):
        all_items = c.gather(c.rank, root=0)
        c.bcast(all_items, root=0)
    total, per_rank = _traffic(P, gather_bcast_allgather)
    rows.append(("allgather: gather+bcast (naive)", total, per_rank,
                 P - 1 + math.ceil(math.log2(P)), "-"))
    return rows


def generate_report() -> str:
    rows = _measure()
    section = Section("A2: collective-algorithm ablation "
                      f"(P = {P} ranks)")
    section.add(table(
        ["algorithm", "total msgs", "max msgs/rank", "rounds (depth)",
         "proj latency us"], rows))
    section.line(
        "The tree/dissemination algorithms bound both the root's fan-out "
        "(max msgs/rank) and the critical path at O(log P), where the "
        "naive variants serialize O(P) messages through one rank -- the "
        "measured counts show why the substrate uses the classic "
        "algorithms, which is what makes its traffic a faithful model of "
        "real MPI traffic.")
    return section.render()


def test_tree_bcast_bounds_root_fanout(benchmark):
    def run():
        tree = _traffic(P, lambda c: c.bcast(
            [0] * 64 if c.rank == 0 else None, root=0))
        linear = _traffic(P, lambda c: _linear_bcast(c, [0] * 64))
        return tree, linear
    (t_total, t_max), (l_total, l_max) = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert t_max <= math.ceil(math.log2(P))
    assert l_max == P - 1


if __name__ == "__main__":
    main(generate_report)
