"""Ablation A2 -- collective algorithm selection in the MPI substrate.

DESIGN.md: collectives are built on point-to-point with the classic
algorithms, and each adaptive op (bcast / reduce / allreduce) picks its
variant per call from the alpha-beta cost model.  This bench sweeps
algorithm x message size x nranks with the ``algorithm=`` override,
measures the real wire traffic of every variant (message counts and
bytes from the rank counters), projects critical-path times with the
cost model, and then verifies that the *automatic* selection lands on
the cost model's argmin on both sides of the crossover.

``--quick`` is the CI smoke mode: one small-message and one
large-message case per adaptive collective, asserting the recorded
algorithm label matches the cost-model prediction (exit 1 on mismatch).
"""

import sys

import numpy as np

from repro import mpi
from repro.mpi import COMMODITY_CLUSTER, SUM, collective_costs, select_algorithm

try:
    from .common import Section, main, table
except ImportError:  # executed as a script, not as a package module
    from common import Section, main, table

MODEL = COMMODITY_CLUSTER
NRANKS = (4, 8)
COUNTS = (8, 1_000, 100_000)  # float64: 64 B, 8 KB, 800 KB

ALLREDUCE_ALGOS = ("reduce+bcast", "recursive-doubling", "ring",
                   "rabenseifner")
BCAST_ALGOS = ("binomial-tree", "scatter-allgather")
REDUCE_ALGOS = ("binomial-tree", "rank-ordered-tree", "gather-fold", "ring")


def _run_case(p, coll, count, algorithm):
    """One forced-algorithm collective; returns wire-traffic facts."""
    def body(comm):
        r = comm.Get_rank()
        before = comm.traffic_snapshot()
        if coll == "allreduce":
            recv = np.empty(count, dtype=np.float64)
            comm.Allreduce(np.full(count, float(r)), recv, SUM,
                           algorithm=algorithm)
        elif coll == "bcast":
            comm.Bcast(np.ones(count, dtype=np.float64), root=0,
                       algorithm=algorithm)
        else:
            recv = np.empty(count, dtype=np.float64) if r == 0 else None
            comm.Reduce(np.full(count, float(r)), recv, SUM, root=0,
                        algorithm=algorithm)
        return comm.traffic_snapshot() - before

    deltas = mpi.run_spmd(body, p)
    return {
        "total_msgs": sum(d.sends for d in deltas),
        "max_msgs": max(d.sends for d in deltas),
        "max_bytes": max(d.bytes_sent for d in deltas),
    }


def _auto_selected(p, coll, count):
    """Algorithm label the adaptive path records, via the counters."""
    def body(comm):
        r = comm.Get_rank()
        before = comm.traffic_snapshot()
        if coll == "allreduce":
            comm.Allreduce(np.ones(count), np.empty(count), SUM)
            op = "Allreduce"
        elif coll == "bcast":
            comm.Bcast(np.ones(count), root=0)
            op = "Bcast"
        else:
            recv = np.empty(count) if r == 0 else None
            comm.Reduce(np.ones(count), recv, SUM, root=0)
            op = "Reduce"
        return (comm.traffic_snapshot() - before).algorithms_used(op)

    labels = set()
    for used in mpi.run_spmd(body, p):
        labels |= used
    assert len(labels) == 1, f"ranks disagreed on the algorithm: {labels}"
    return labels.pop()


def _sweep(coll, algorithms):
    rows = []
    for p in NRANKS:
        for count in COUNTS:
            nbytes = 8 * count
            costs = collective_costs(coll, p, nbytes, MODEL, count=count)
            for algo in algorithms:
                if algo not in costs:
                    continue  # segmented variants need count >= p etc.
                facts = _run_case(p, coll, count, algo)
                rows.append((p, f"{nbytes:,}", algo,
                             facts["total_msgs"], facts["max_msgs"],
                             f"{facts['max_bytes']:,}",
                             f"{costs[algo] * 1e6:.1f}"))
    return rows


def _selection_rows(coll):
    rows = []
    for p in NRANKS:
        for count in COUNTS:
            nbytes = 8 * count
            predicted = select_algorithm(coll, p, nbytes, MODEL, count=count)
            observed = _auto_selected(p, coll, count)
            rows.append((p, f"{nbytes:,}", predicted, observed,
                         "yes" if predicted == observed else "NO"))
    return rows


def generate_report() -> str:
    section = Section("A2: collective-algorithm ablation "
                      f"(algorithm x size x nranks, model={MODEL.name})")
    for coll, algorithms in (("allreduce", ALLREDUCE_ALGOS),
                             ("bcast", BCAST_ALGOS),
                             ("reduce", REDUCE_ALGOS)):
        section.add(table(
            ["p", "bytes", "algorithm", "total msgs", "max msgs/rank",
             "max bytes/rank", "proj time us"],
            _sweep(coll, algorithms),
            title=f"{coll}: forced-algorithm wire traffic"))
        section.line()
    sel_rows = []
    for coll in ("allreduce", "bcast", "reduce"):
        sel_rows += [(coll,) + row for row in _selection_rows(coll)]
    section.add(table(
        ["collective", "p", "bytes", "cost-model argmin", "auto-selected",
         "match"], sel_rows,
        title="automatic selection vs cost-model prediction"))
    mismatches = [r for r in sel_rows if r[-1] != "yes"]
    distinct = {r[4] for r in sel_rows}
    section.line(
        f"Auto-selection matched the cost model in "
        f"{len(sel_rows) - len(mismatches)}/{len(sel_rows)} cases and "
        f"exercised {len(distinct)} distinct algorithms "
        f"({', '.join(sorted(distinct))}): latency-bound sizes take the "
        "O(log p)-round trees, bandwidth-bound sizes flip to the "
        "segmented ring/Rabenseifner variants at the crossover the "
        "alpha-beta model predicts.")
    if mismatches:
        section.line(f"MISMATCHES: {mismatches}")
    return section.render()


def quick_check() -> int:
    """CI smoke: selection must match the cost model on both sides of
    the crossover.  Returns a process exit code."""
    failures = []
    for coll, small, large in (("allreduce", 8, 200_000),
                               ("bcast", 8, 100_000)):
        for count in (small, large):
            predicted = select_algorithm(coll, 8, 8 * count, MODEL,
                                         count=count)
            observed = _auto_selected(8, coll, count)
            status = "ok" if predicted == observed else "MISMATCH"
            print(f"[quick] {coll:9s} {8 * count:>9,} B  "
                  f"predicted={predicted:20s} observed={observed:20s} "
                  f"{status}")
            if predicted != observed:
                failures.append((coll, count, predicted, observed))
    small_algo = _auto_selected(8, "allreduce", 8)
    large_algo = _auto_selected(8, "allreduce", 200_000)
    if small_algo == large_algo:
        failures.append(("allreduce crossover", small_algo))
        print("[quick] FAIL: no crossover observed between 64 B and 1.6 MB")
    if failures:
        print(f"[quick] {len(failures)} failure(s): {failures}")
        return 1
    print("[quick] selection matches the cost model on both sides of "
          "the crossover")
    return 0


def test_selection_matches_cost_model(benchmark):
    assert benchmark.pedantic(quick_check, rounds=1, iterations=1) == 0


if __name__ == "__main__":
    if "--quick" in sys.argv:
        sys.exit(quick_check())
    main(generate_report)
